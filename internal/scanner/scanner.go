// Package scanner is Graph.js proper: the end-to-end pipeline that
// takes JavaScript sources (npm-package style), parses and normalizes
// them, builds the MDG, loads it into the embedded graph database, and
// runs the vulnerability queries (paper §4, "Implementation").
package scanner

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/js/ast"
	"repro/internal/js/normalize"
	"repro/internal/js/parser"
	"repro/internal/queries"
	"repro/internal/reach"
	"repro/internal/taint"
)

// Engine selects the detection backend.
type Engine string

// Detection backends. The query engine loads the MDG into the graph
// database and runs the Table 2 queries; the native engine computes
// taint facts with one dataflow fixpoint directly on the MDG;
// differential mode runs both and fails loudly when their finding
// sets disagree.
const (
	EngineQuery        Engine = "query"
	EngineNative       Engine = "native"
	EngineDifferential Engine = "differential"
)

// ParseEngine validates an engine name ("" means the default, query).
func ParseEngine(s string) (Engine, error) {
	switch Engine(s) {
	case "", EngineQuery:
		return EngineQuery, nil
	case EngineNative:
		return EngineNative, nil
	case EngineDifferential:
		return EngineDifferential, nil
	}
	return "", fmt.Errorf("scanner: unknown engine %q (want query, native, or differential)", s)
}

// Options tunes a scan.
type Options struct {
	// Config is the sink configuration (DefaultConfig when nil).
	Config *queries.Config
	// Engine selects the detection backend ("" = EngineQuery).
	Engine Engine
	// Analysis options forwarded to the MDG builder.
	Analysis analysis.Options
	// Timeout aborts the scan (0 = no timeout). Enforced via the
	// analyzer's step budget plus wall-clock checks between phases.
	Timeout time.Duration
	// Cache, when set, memoizes the per-file front end across scans
	// (see Cache).
	Cache *Cache
	// NoReachGate disables the call-graph reachability pre-pass that
	// skips graph construction for packages whose reachable code
	// cannot produce a finding.
	NoReachGate bool
	// Workers bounds the worker pool for multi-package sweeps
	// (metrics.SweepGraphJS, graphjs -workers). 0 means
	// runtime.GOMAXPROCS(0); 1 forces a sequential sweep. A single
	// ScanSource/ScanFile/ScanPackage call ignores it.
	Workers int
}

// Report is the outcome of scanning one file or package.
type Report struct {
	Name     string
	Findings []queries.Finding
	TimedOut bool
	Err      error

	// Engine records the backend that produced Findings.
	Engine Engine

	// Phase timings (Table 6).
	GraphTime time.Duration // parse + normalize + MDG build + load
	QueryTime time.Duration // detection with the selected backend
	// Per-backend detection timings: NativeTime is filled when the
	// native engine ran, QueryEngineTime when the query engine ran
	// (differential mode fills both).
	NativeTime      time.Duration
	QueryEngineTime time.Duration

	// Reachability pre-pass results: how many functions the package
	// defines, how many are unreachable from its exported API, and
	// whether detection was skipped outright because reachable code
	// cannot produce a finding.
	FuncsTotal     int
	FuncsPruned    int
	SkippedByReach bool

	// TruncatedSearches counts taint searches cut short by the
	// MaxHops bound (silent under-approximation made observable).
	TruncatedSearches int

	// Size metrics (Table 7). ASTNodes/CFGNodes are included to match
	// the paper's accounting ("we included the AST and CFG nodes used
	// to generate the final MDG").
	LoC       int
	ASTNodes  int
	CFGNodes  int
	CFGEdges  int
	MDGNodes  int
	MDGEdges  int
	CoreStmts int
}

// TotalNodes returns the node count as Table 7 reports it.
func (r *Report) TotalNodes() int { return r.ASTNodes + r.CFGNodes + r.MDGNodes }

// TotalEdges returns the edge count as Table 7 reports it.
func (r *Report) TotalEdges() int { return r.CFGEdges + r.MDGEdges }

// TotalTime returns the end-to-end analysis time.
func (r *Report) TotalTime() time.Duration { return r.GraphTime + r.QueryTime }

// ScanSource scans one JavaScript source text.
//
// ScanSource is safe for concurrent use by multiple goroutines, which
// is what makes parallel corpus sweeps (metrics.SweepGraphJS) sound:
// every pipeline stage — parser, normalizer, CFG builder, abstract
// interpreter, reach gate, and all three detection backends —
// allocates its state per call, the shared opts.Config is read-only
// after construction, and opts.Cache (when set) is internally locked.
func ScanSource(src, name string, opts Options) *Report {
	rep := &Report{Name: name, LoC: strings.Count(src, "\n") + 1}
	cfgq := opts.Config
	if cfgq == nil {
		cfgq = queries.DefaultConfig()
	}
	engine, err := ParseEngine(string(opts.Engine))
	if err != nil {
		rep.Err = err
		return rep
	}
	rep.Engine = engine
	deadline := time.Time{}
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}
	expired := func() bool { return !deadline.IsZero() && time.Now().After(deadline) }

	start := time.Now()

	prog, err := parser.Parse(src)
	if err != nil {
		rep.Err = fmt.Errorf("scanner: parse %s: %w", name, err)
		return rep
	}
	rep.ASTNodes = ast.Count(prog)

	nprog := normalize.Normalize(prog, name)
	rep.CoreStmts = core.CountStmts(nprog.Body)

	cfgs := cfg.BuildAll(nprog)
	rep.CFGNodes, rep.CFGEdges = cfg.TotalSize(cfgs)

	if gateSkips(rep, []*core.Program{nprog}, cfgq, opts) {
		rep.GraphTime = time.Since(start)
		return rep
	}

	aopts := opts.Analysis
	if aopts.MaxLoopIter == 0 {
		aopts = analysis.DefaultOptions()
	}
	res := analysis.Analyze(nprog, aopts)
	rep.MDGNodes = res.Graph.NumNodes()
	rep.MDGEdges = res.Graph.NumEdges()
	if res.TimedOut || expired() {
		rep.TimedOut = true
		rep.GraphTime = time.Since(start)
		return rep
	}

	runDetection(rep, res, cfgq, engine, start)
	if expired() {
		rep.TimedOut = true
	}
	return rep
}

// gateSkips runs the reachability pre-pass and reports whether the
// whole detection pipeline can be skipped for this package.
func gateSkips(rep *Report, progs []*core.Program, cfgq *queries.Config, opts Options) bool {
	if opts.NoReachGate {
		return false
	}
	rr := reach.Analyze(progs, cfgq)
	rep.FuncsTotal = rr.TotalFuncs
	rep.FuncsPruned = rr.PrunedFuncs
	if rr.CanSkipDetection() {
		rep.SkippedByReach = true
		return true
	}
	return false
}

// runDetection executes the selected backend over an analysis result.
// GraphTime is closed here because the query backend's database load
// is part of graph construction.
func runDetection(rep *Report, res *analysis.Result, cfgq *queries.Config, engine Engine, start time.Time) {
	switch engine {
	case EngineNative:
		rep.GraphTime = time.Since(start)
		qStart := time.Now()
		eng := taint.NewEngine(res, cfgq)
		rep.Findings = eng.Detect()
		rep.NativeTime = time.Since(qStart)
		rep.QueryTime = rep.NativeTime
		rep.TruncatedSearches = eng.Truncated

	case EngineDifferential:
		lg := queries.Load(res)
		rep.GraphTime = time.Since(start)
		qStart := time.Now()
		qf, err := queries.Detect(lg, cfgq)
		rep.QueryEngineTime = time.Since(qStart)
		if err != nil {
			rep.Err = err
			return
		}
		nStart := time.Now()
		eng := taint.NewEngine(res, cfgq)
		nf := eng.Detect()
		rep.NativeTime = time.Since(nStart)
		rep.QueryTime = rep.QueryEngineTime + rep.NativeTime
		rep.TruncatedSearches = lg.Truncated + eng.Truncated
		rep.Findings = qf
		if err := DiffFindings(qf, nf); err != nil {
			rep.Err = fmt.Errorf("scanner: differential mismatch on %s: %w", rep.Name, err)
		}

	default: // EngineQuery
		lg := queries.Load(res)
		rep.GraphTime = time.Since(start)
		qStart := time.Now()
		fs, err := queries.Detect(lg, cfgq)
		rep.QueryEngineTime = time.Since(qStart)
		rep.QueryTime = rep.QueryEngineTime
		rep.TruncatedSearches = lg.Truncated
		if err != nil {
			rep.Err = err
			return
		}
		rep.Findings = fs
	}
}

// DiffFindings compares the finding sets of the two backends on the
// identity (CWE, sink name, sink file, sink line, source), ignoring
// witness paths (the backends report different but equally valid
// witnesses). A non-nil error describes every discrepancy.
func DiffFindings(query, native []queries.Finding) error {
	key := func(f queries.Finding) string {
		return fmt.Sprintf("%s %s %s:%d (source %s)", f.CWE, f.SinkName, f.SinkFile, f.SinkLine, f.Source)
	}
	count := func(fs []queries.Finding) map[string]int {
		m := map[string]int{}
		for _, f := range fs {
			m[key(f)]++
		}
		return m
	}
	qm, nm := count(query), count(native)
	var diffs []string
	for k, c := range qm {
		if nm[k] != c {
			diffs = append(diffs, fmt.Sprintf("query=%d native=%d: %s", c, nm[k], k))
		}
	}
	for k, c := range nm {
		if _, ok := qm[k]; !ok {
			diffs = append(diffs, fmt.Sprintf("query=0 native=%d: %s", c, k))
		}
	}
	if len(diffs) == 0 {
		return nil
	}
	sort.Strings(diffs)
	return fmt.Errorf("finding sets differ (%d discrepancies):\n  %s",
		len(diffs), strings.Join(diffs, "\n  "))
}

// ScanFile scans one JavaScript file.
func ScanFile(path string, opts Options) *Report {
	data, err := os.ReadFile(path)
	if err != nil {
		return &Report{Name: path, Err: fmt.Errorf("scanner: %w", err)}
	}
	return ScanSource(string(data), path, opts)
}

// ScanPackage scans every .js file under dir (skipping node_modules and
// test directories, like the artifact does) as one multi-module
// package: a single combined MDG is built so that require('./sibling')
// flows connect across files, then the vulnerability queries run once
// over the whole graph.
func ScanPackage(dir string, opts Options) *Report {
	var files []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			base := filepath.Base(path)
			if base == "node_modules" || base == "test" || base == "tests" || base == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".js") && !strings.HasSuffix(path, ".min.js") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return &Report{Name: dir, Err: fmt.Errorf("scanner: %w", err)}
	}
	sort.Strings(files)

	cfgq := opts.Config
	if cfgq == nil {
		cfgq = queries.DefaultConfig()
	}
	rep := &Report{Name: dir}
	engine, err := ParseEngine(string(opts.Engine))
	if err != nil {
		rep.Err = err
		return rep
	}
	rep.Engine = engine
	start := time.Now()

	frontEnd := noCacheFrontEnd
	if opts.Cache != nil {
		frontEnd = opts.Cache.frontEnd
	}
	var progs []*core.Program
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			if rep.Err == nil {
				rep.Err = fmt.Errorf("scanner: %w", err)
			}
			continue
		}
		rel, relErr := filepath.Rel(dir, f)
		if relErr != nil {
			rel = f
		}
		entry, err := frontEnd(rel, string(data))
		if err != nil {
			if rep.Err == nil {
				rep.Err = fmt.Errorf("scanner: parse %s: %w", rel, err)
			}
			continue
		}
		rep.LoC += entry.loc
		rep.ASTNodes += entry.astNodes
		rep.CoreStmts += entry.coreStmts
		rep.CFGNodes += entry.cfgNodes
		rep.CFGEdges += entry.cfgEdges
		progs = append(progs, entry.prog)
	}
	if len(progs) == 0 {
		return rep
	}

	if gateSkips(rep, progs, cfgq, opts) {
		rep.GraphTime = time.Since(start)
		return rep
	}

	aopts := opts.Analysis
	if aopts.MaxLoopIter == 0 {
		aopts = analysis.DefaultOptions()
	}
	res := analysis.AnalyzeModules(progs, aopts)
	rep.MDGNodes = res.Graph.NumNodes()
	rep.MDGEdges = res.Graph.NumEdges()
	if res.TimedOut {
		rep.TimedOut = true
		rep.GraphTime = time.Since(start)
		return rep
	}
	runDetection(rep, res, cfgq, engine, start)
	return rep
}
