package scanner

import (
	"errors"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/dataset"
)

// pathologicalSource fetches one crash-corpus package by name.
func pathologicalSource(t *testing.T, name string) string {
	t.Helper()
	for _, p := range dataset.Pathological().Packages {
		if p.Name == name {
			return p.Source
		}
	}
	t.Fatalf("pathological package %q not in corpus", name)
	return ""
}

// TestPathologicalClasses is the fault-containment regression: every
// crash-corpus package must terminate well under its budget with the
// expected failure classification — no hangs, no process-killing
// panics.
func TestPathologicalClasses(t *testing.T) {
	want := map[string]budget.Class{
		"alias_storm":           budget.ClassNone,  // 2000 aliases of one tainted value
		"call_chain":            budget.ClassNone,  // 1200-function forwarding chain
		"deep_nesting":          budget.ClassParse, // parser recursion-depth limit
		"huge_object":           budget.ClassNone,  // big but convergent
		"member_chain":          budget.ClassNone,  // 2000-deep property chain
		"proto_cycle":           budget.ClassNone,  // cyclic prototype chain
		"unroll_bomb":           budget.ClassNone,  // MDG fixpoint summarizes it
		"unterminated_template": budget.ClassParse, // lexer-level front-end failure
	}
	c := dataset.Pathological()
	if len(c.Packages) != len(want) {
		t.Fatalf("corpus has %d packages, expectations cover %d", len(c.Packages), len(want))
	}
	for _, p := range c.Packages {
		start := time.Now()
		rep := ScanSource(p.Source, p.Name, Options{Timeout: 30 * time.Second})
		elapsed := time.Since(start)
		if elapsed > 30*time.Second {
			t.Errorf("%s: ran %v, exceeded its budget", p.Name, elapsed)
		}
		if rep.Failure != want[p.Name] {
			t.Errorf("%s: failure class %q, want %q (err=%v)", p.Name, rep.Failure, want[p.Name], rep.Err)
		}
		if rep.TimedOut {
			t.Errorf("%s: timed out under a 30s budget", p.Name)
		}
	}
}

// TestScanStepCapIncomplete: tripping the step cap must classify the
// run as budget-exceeded and keep it a non-error, findings-so-far
// outcome.
func TestScanStepCapIncomplete(t *testing.T) {
	src := pathologicalSource(t, "huge_object")
	rep := ScanSource(src, "huge_object", Options{MaxSteps: 50})
	if rep.Failure != budget.ClassBudget {
		t.Fatalf("failure class %q, want %q (err=%v)", rep.Failure, budget.ClassBudget, rep.Err)
	}
	if !rep.Incomplete {
		t.Error("budget-capped scan not marked Incomplete")
	}
	if rep.Err != nil {
		t.Errorf("budget exhaustion surfaced as error: %v", rep.Err)
	}
}

// TestScanNodeCapIncomplete: same contract for the MDG node cap. The
// huge_object package builds ~3000 MDG nodes unconstrained, so a cap
// of 500 must trip mid-analysis while detection still runs over the
// partial graph.
func TestScanNodeCapIncomplete(t *testing.T) {
	src := pathologicalSource(t, "huge_object")
	rep := ScanSource(src, "huge_object", Options{MaxNodes: 500})
	if rep.Failure != budget.ClassBudget {
		t.Fatalf("failure class %q, want %q (err=%v)", rep.Failure, budget.ClassBudget, rep.Err)
	}
	if !rep.Incomplete {
		t.Error("node-capped scan not marked Incomplete")
	}
}

// TestScanTimeoutClass: wall-clock expiry is classified as a timeout
// and keeps the legacy TimedOut flag.
func TestScanTimeoutClass(t *testing.T) {
	src := pathologicalSource(t, "proto_cycle")
	rep := ScanSource(src, "proto_cycle", Options{Timeout: time.Nanosecond})
	if rep.Failure != budget.ClassTimeout {
		t.Fatalf("failure class %q, want %q", rep.Failure, budget.ClassTimeout)
	}
	if !rep.TimedOut {
		t.Error("timeout class without TimedOut flag")
	}
	if rep.Err != nil {
		t.Errorf("timeout surfaced as error: %v", rep.Err)
	}
}

// TestEnginePanicIsolation: a panic inside a detection backend must be
// contained as a classified, structured error — the scan returns
// normally.
func TestEnginePanicIsolation(t *testing.T) {
	testHookNative = func(string, *budget.Budget) { panic("injected engine bug") }
	defer func() { testHookNative = nil }()

	src := pathologicalSource(t, "proto_cycle")
	rep := ScanSource(src, "proto_cycle", Options{Engine: EngineNative})
	if rep.Failure != budget.ClassPanic {
		t.Fatalf("failure class %q, want %q", rep.Failure, budget.ClassPanic)
	}
	var pe *budget.PanicError
	if !errors.As(rep.Err, &pe) {
		t.Fatalf("err %T (%v), want *budget.PanicError", rep.Err, rep.Err)
	}
	if pe.Phase != "detect-native" {
		t.Errorf("panic phase %q, want detect-native", pe.Phase)
	}
}

// TestFallbackEngine: when the native backend dies, the fallback
// engine must retry on the query backend and produce exactly the
// query engine's findings.
func TestFallbackEngine(t *testing.T) {
	src := pathologicalSource(t, "proto_cycle")
	want := ScanSource(src, "proto_cycle", Options{Engine: EngineQuery})
	if want.Err != nil || len(want.Findings) == 0 {
		t.Fatalf("query engine baseline unusable: err=%v findings=%d", want.Err, len(want.Findings))
	}

	testHookNative = func(string, *budget.Budget) { panic("injected engine bug") }
	defer func() { testHookNative = nil }()

	rep := ScanSource(src, "proto_cycle", Options{Engine: EngineFallback})
	if !rep.FellBack {
		t.Fatal("fallback engine did not record FellBack")
	}
	if rep.FallbackErr == nil {
		t.Error("FellBack without FallbackErr")
	}
	if rep.Err != nil {
		t.Fatalf("fallback scan errored: %v", rep.Err)
	}
	if err := DiffFindings(want.Findings, rep.Findings); err != nil {
		t.Errorf("fallback findings differ from the surviving engine: %v", err)
	}
}

// TestFallbackBudgetRetriesFresh is the regression for the old
// fallback behaviour that refused to retry after a cap trip ("the
// budget is spent; a retry would trip it again"): when the native
// backend exhausts its step cap, the fallback must derive a fresh,
// smaller allowance and still produce the query engine's findings
// instead of giving up.
func TestFallbackBudgetRetriesFresh(t *testing.T) {
	src := pathologicalSource(t, "proto_cycle")
	want := ScanSource(src, "proto_cycle", Options{Engine: EngineQuery})
	if want.Err != nil || len(want.Findings) == 0 {
		t.Fatalf("query engine baseline unusable: err=%v findings=%d", want.Err, len(want.Findings))
	}

	// Burn the scan's entire step allowance inside the native backend,
	// then unwind with the budget's own error (a cooperative abort the
	// Guard passes through as ClassBudget).
	testHookNative = func(_ string, b *budget.Budget) {
		for b.Step() == nil {
		}
		panic(b.Err())
	}
	defer func() { testHookNative = nil }()

	rep := ScanSource(src, "proto_cycle", Options{Engine: EngineFallback, MaxSteps: 2_000_000})
	if !rep.FellBack {
		t.Fatal("budget-exhausted native backend did not fall back")
	}
	if budget.ClassOf(rep.FallbackErr) != budget.ClassBudget {
		t.Errorf("FallbackErr class %q, want budget-exceeded", budget.ClassOf(rep.FallbackErr))
	}
	if !rep.Incomplete {
		t.Error("budget-driven fallback not marked Incomplete")
	}
	if rep.Err != nil {
		t.Fatalf("fallback scan errored: %v", rep.Err)
	}
	if err := DiffFindings(want.Findings, rep.Findings); err != nil {
		t.Errorf("fallback findings differ from the query baseline: %v", err)
	}
}

// TestReachGateOnlyTriage: the ladder's floor rung runs nothing past
// the reach gate — a package the gate cannot prove clean comes back
// Incomplete with no findings and no failure, quickly.
func TestReachGateOnlyTriage(t *testing.T) {
	src := pathologicalSource(t, "proto_cycle")
	rep := ScanSource(src, "proto_cycle", Options{ReachGateOnly: true})
	if len(rep.Findings) != 0 {
		t.Errorf("triage scan produced findings: %d", len(rep.Findings))
	}
	if !rep.Incomplete {
		t.Error("unproven triage scan not marked Incomplete")
	}
	if rep.Failure != budget.ClassNone || rep.Err != nil {
		t.Errorf("triage scan failed: class=%q err=%v", rep.Failure, rep.Err)
	}

	// A gate-provably-clean package completes cleanly at the floor.
	clean := ScanSource("var x = 1 + 2;\n", "clean", Options{ReachGateOnly: true})
	if clean.Incomplete || clean.Failure != budget.ClassNone || clean.Err != nil {
		t.Errorf("clean triage scan: incomplete=%v class=%q err=%v",
			clean.Incomplete, clean.Failure, clean.Err)
	}
	if !clean.SkippedByReach {
		t.Error("clean package not proven by the reach gate")
	}
}

// TestPhaseAccounting: a completed scan reports per-phase budget
// consumption, and a capped scan names the phase that exhausted it.
func TestPhaseAccounting(t *testing.T) {
	src := pathologicalSource(t, "huge_object")
	rep := ScanSource(src, "huge_object", Options{})
	if len(rep.Phases) == 0 {
		t.Fatal("scan reported no phase usage")
	}
	seen := map[string]bool{}
	for _, u := range rep.Phases {
		seen[u.Phase] = true
	}
	for _, want := range []string{"front-end", "analysis"} {
		if !seen[want] {
			t.Errorf("phase %q missing from %v", want, rep.Phases)
		}
	}

	capped := ScanSource(src, "huge_object", Options{MaxSteps: 50})
	if capped.Failure != budget.ClassBudget {
		t.Fatalf("capped scan class %q", capped.Failure)
	}
	if capped.ExhaustedPhase == "" {
		t.Error("capped scan did not name its exhausted phase")
	}
}

// TestFallbackHealthyMatchesNative: with both backends healthy the
// fallback engine is just the native engine.
func TestFallbackHealthyMatchesNative(t *testing.T) {
	src := pathologicalSource(t, "proto_cycle")
	native := ScanSource(src, "proto_cycle", Options{Engine: EngineNative})
	fb := ScanSource(src, "proto_cycle", Options{Engine: EngineFallback})
	if fb.FellBack {
		t.Error("healthy fallback scan reported FellBack")
	}
	if err := DiffFindings(native.Findings, fb.Findings); err != nil {
		t.Errorf("fallback findings differ from native: %v", err)
	}
}
