package scanner

// Dependency-tree scanning (Options.Tree): instead of treating every
// bare require('pkg') as an opaque external module, the scanner
// resolves the package's node_modules tree with internal/deptree,
// builds one MDG fragment per package exactly as the incremental
// scanner builds per-component fragments, stitches the fragments into
// one graph, and then *links* the cross-package boundaries: every
// placeholder module node left behind by an unresolved require is
// grafted onto the real dependency's exports, so taint flows through
// require('dep').f(x) into the dependency's real exported function.
//
// The linker only replays edges the combined whole-program analysis
// would have created itself (the tree-equivalence oracle in
// tree_oracle_test.go enforces byte-identical findings against a
// flattened single-package scan), and per-package fragments stay
// independently cacheable: a warm re-scan after editing one dependency
// rebuilds only that package's fragment.

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/deptree"
	"repro/internal/mdg"
	"repro/internal/queries"
	"repro/internal/reach"
)

// ScanTreeDir scans a package directory *including* its node_modules
// dependencies as one dependency tree. Unlike ScanPackage's walker it
// descends into node_modules and collects package.json manifests (for
// the resolver), while still skipping test directories and VCS
// internals.
func ScanTreeDir(dir string, opts Options) *Report {
	var files []SourceFile
	var readErr error
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			base := filepath.Base(path)
			if base == "test" || base == "tests" || base == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		isJS := strings.HasSuffix(path, ".js") && !strings.HasSuffix(path, ".min.js")
		if !isJS && filepath.Base(path) != "package.json" {
			return nil
		}
		rel, relErr := filepath.Rel(dir, path)
		if relErr != nil {
			rel = path
		}
		data, rdErr := os.ReadFile(path)
		if rdErr != nil {
			if readErr == nil {
				readErr = fmt.Errorf("scanner: %w", rdErr)
			}
			return nil
		}
		files = append(files, SourceFile{Rel: filepath.ToSlash(rel), Src: string(data)})
		return nil
	})
	if err != nil {
		return &Report{Name: dir, Err: fmt.Errorf("scanner: %w", err)}
	}
	sort.Slice(files, func(i, j int) bool { return files[i].Rel < files[j].Rel })
	opts.Tree = true
	return scanFiles(files, dir, opts, readErr)
}

// treeKeyPrefix namespaces tree-mode fragment keys so they can share
// an IncrementalState (and its store) with per-component keys without
// either mode invalidating the other's entries.
const treeKeyPrefix = "tree|"

// scanTree is the Options.Tree entry point, reached via scanFiles. A
// dedicated (possibly throwaway) IncrementalState supplies the
// front-end cache, the per-package fragment cache, and the persistent
// store plumbing.
func scanTree(files []SourceFile, name string, opts Options, preErr error) *Report {
	st := opts.Incremental
	if st == nil {
		st = NewIncrementalState()
	}
	return st.scanTree(files, name, opts, preErr)
}

// treeLive is one package's fragment in this scan, in stitch order.
type treeLive struct {
	pkg    *deptree.Package
	fe     *fragEntry
	built  bool // analyzed this scan (fragment snapshotted either way)
	stored bool // fe lives in st.frags (cacheable)
}

func (st *IncrementalState) scanTree(files []SourceFile, name string, opts Options, preErr error) *Report {
	st.mu.Lock()
	defer st.mu.Unlock()

	cfgq := opts.Config
	if cfgq == nil {
		cfgq = queries.DefaultConfig()
	}
	rep := &Report{Name: name, Err: preErr}
	engine, err := ParseEngine(string(opts.Engine))
	if err != nil {
		rep.Err = err
		return rep
	}
	rep.Engine = engine
	b := newBudget(opts, name)
	defer func() { recordPhases(rep, b) }()
	start := time.Now()

	// Resolve the dependency tree first: a broken tree (missing or
	// unusable node_modules entry) is a deterministic, classified
	// failure — no rung of the retry ladder can fix the layout on
	// disk, so the supervisor treats ClassResolve like ClassParse.
	fmap := make(map[string]string, len(files))
	for _, f := range files {
		fmap[f.Rel] = f.Src
	}
	tree := deptree.Build(fmap)
	if probs := tree.Problems(); len(probs) > 0 {
		rep.Failure = budget.ClassResolve
		rep.Err = fmt.Errorf("scanner: dependency tree %s: %w", name, errors.Join(probs...))
		return rep
	}
	rep.TreePackages = len(tree.Packages)
	for _, p := range tree.Packages {
		if d := strings.Count(p.Dir, "node_modules"); d > rep.TreeDepth {
			rep.TreeDepth = d
		}
	}

	// Front end over every .js file in the tree, through the state's
	// cache (package.json manifests feed the resolver only).
	type feItem struct {
		rel   string
		entry *cacheEntry
	}
	var items []feItem
	keep := make(map[string]bool, len(files))
	b.BeginPhase("front-end")
	ferr := budget.Guard("front-end", func() error {
		for _, f := range files {
			if !strings.HasSuffix(f.Rel, ".js") {
				continue
			}
			keep[f.Rel] = true
			entry, feErr := st.cache.frontEnd(f.Rel, f.Src, b)
			if feErr != nil {
				switch budget.ClassOf(feErr) {
				case budget.ClassTimeout, budget.ClassBudget, budget.ClassCanceled:
					return feErr
				}
				if rep.Err == nil {
					rep.Err = fmt.Errorf("scanner: parse %s: %w", f.Rel, feErr)
					rep.Failure = budget.ClassParse
				}
				continue
			}
			rep.LoC += entry.loc
			rep.ASTNodes += entry.astNodes
			rep.CoreStmts += entry.coreStmts
			rep.CFGNodes += entry.cfgNodes
			rep.CFGEdges += entry.cfgEdges
			items = append(items, feItem{f.Rel, entry})
		}
		b.CheckDeadline()
		return b.Err()
	})
	st.stats.EvictedFiles += st.cache.EvictExcept(keep)
	if ferr != nil {
		frontEndFailure(rep, ferr, name)
		rep.GraphTime = time.Since(start)
		rep.IncrStats = st.statsPtr()
		return rep
	}
	if len(items) == 0 {
		rep.IncrStats = st.statsPtr()
		return rep
	}
	byRel := make(map[string]*cacheEntry, len(items))
	progs := make([]*core.Program, len(items))
	for i, it := range items {
		byRel[it.rel] = it.entry
		progs[i] = it.entry.prog
	}

	// Whole-tree reach gate: all packages' programs, all export roots.
	// Bare requires stay opaque to the gate's export interpreter, but
	// the gate remains sound — a dependency's reachable sink keeps the
	// tree un-skippable through the dependency's own export surface.
	skip := false
	var rr *reach.Result
	b.BeginPhase("reach-gate")
	if gerr := budget.Guard("reach-gate", func() error {
		rr, skip = gateSkips(rep, progs, cfgq, opts, b)
		return nil
	}); gerr != nil {
		setFailure(rep, gerr, budget.ClassPanic)
		rep.GraphTime = time.Since(start)
		rep.IncrStats = st.statsPtr()
		return rep
	}
	if gateCanceled(rep, b) {
		rep.GraphTime = time.Since(start)
		rep.IncrStats = st.statsPtr()
		return rep
	}
	if skip {
		rep.GraphTime = time.Since(start)
		rep.IncrStats = st.statsPtr()
		return rep
	}
	if opts.ReachGateOnly {
		rep.Incomplete = true
		rep.GraphTime = time.Since(start)
		rep.IncrStats = st.statsPtr()
		return rep
	}

	aopts := opts.Analysis
	if aopts.MaxLoopIter == 0 {
		aopts = analysis.DefaultOptions()
	}
	callerNoFallback := aopts.NoExportFallback
	aopts.NoExportFallback = true
	// Every package runs the full cross-module fixpoint, matching the
	// pass count a combined whole-tree analysis would use.
	aopts.ForceMultiPass = true
	aoptsKey := fmt.Sprintf("%sv1|%d|%d|%t", treeKeyPrefix, aopts.MaxLoopIter,
		aopts.StepBudget, aopts.TreatAllFunctionsAsExported)
	aopts.Budget = b

	// Build or fetch each package's fragment, in stitch order (root
	// first, then dependencies sorted by directory — so relative
	// location order matches a flattened scan's file order).
	var lives []treeLive
	currentKeys := make(map[string]bool, len(tree.Packages))
	aborted := false
	b.BeginPhase("analysis")
	for _, pkg := range tree.Packages {
		var crels []string
		var hashes [][sha256.Size]byte
		var comprogs []*core.Program
		for _, rel := range pkg.Files {
			entry := byRel[rel]
			if entry == nil {
				continue // unparseable file, already classified
			}
			crels = append(crels, rel)
			hashes = append(hashes, entry.hash)
			comprogs = append(comprogs, entry.prog)
		}
		if len(comprogs) == 0 {
			continue
		}
		pkey := treePackageKey(pkg.Dir, crels, hashes, aoptsKey)
		currentKeys[pkey] = true
		if fe, ok := st.frags[pkey]; ok {
			st.stats.FragmentHits++
			lives = append(lives, treeLive{pkg: pkg, fe: fe, stored: true})
			continue
		}
		if fe, ok := st.loadFrag(pkey); ok {
			st.stats.FragmentHits++
			st.frags[pkey] = fe
			lives = append(lives, treeLive{pkg: pkg, fe: fe, stored: true})
			continue
		}
		if aborted {
			continue
		}
		st.stats.FragmentMisses++
		var res *analysis.Result
		if aerr := budget.Guard("analysis", func() error {
			res = analysis.AnalyzeModules(comprogs, aopts)
			return nil
		}); aerr != nil {
			setFailure(rep, aerr, budget.ClassPanic)
			rep.GraphTime = time.Since(start)
			rep.IncrStats = st.statsPtr()
			return rep
		}
		if res.TimedOut && b.Err() == nil {
			rep.TimedOut = true
			rep.Failure = budget.ClassBudget
			rep.GraphTime = time.Since(start)
			rep.IncrStats = st.statsPtr()
			return rep
		}
		b.CheckDeadline()
		if berr := b.Err(); berr != nil {
			if c := budget.ClassOf(berr); c == budget.ClassTimeout || c == budget.ClassCanceled {
				rep.Failure = c
				rep.TimedOut = c == budget.ClassTimeout
				rep.Incomplete = c == budget.ClassCanceled
				rep.GraphTime = time.Since(start)
				rep.IncrStats = st.statsPtr()
				return rep
			}
			// A step/node/edge cap: keep the partial fragment for this
			// scan's best-effort stitch but never cache it.
			rep.Incomplete = true
			rep.Failure = budget.ClassOf(berr)
			aborted = true
			fe := newFragEntry(pkey, crels, res)
			lives = append(lives, treeLive{pkg: pkg, fe: fe, built: true})
			continue
		}
		fe := newFragEntry(pkey, crels, res)
		st.frags[pkey] = fe
		st.saveFrag(fe)
		lives = append(lives, treeLive{pkg: pkg, fe: fe, built: true, stored: true})
	}
	if len(lives) == 0 {
		rep.GraphTime = time.Since(start)
		rep.IncrStats = st.statsPtr()
		return rep
	}

	// Package-tree-wide export decision, exactly the cold rule: the
	// script fallback applies only when no package has a real export.
	anyReal := false
	for _, lv := range lives {
		if lv.fe.hasReal {
			anyReal = true
		}
	}
	fb := !anyReal && !aopts.TreatAllFunctionsAsExported && !callerNoFallback

	// Stitch all package fragments into one graph and translate every
	// fragment-local side table through the stitch remap.
	frags := make([]*mdg.Fragment, len(lives))
	for i, lv := range lives {
		frags[i] = lv.fe.frag
	}
	var g *mdg.Graph
	var remaps []map[mdg.Loc]mdg.Loc
	var res *analysis.Result
	var ln *treeLinker
	if serr := budget.Guard("stitch-link", func() error {
		g, remaps = mdg.Stitch(frags...)
		res, ln = linkTree(g, remaps, lives, tree, anyReal)
		return nil
	}); serr != nil {
		setFailure(rep, serr, budget.ClassPanic)
		rep.GraphTime = time.Since(start)
		rep.IncrStats = st.statsPtr()
		return rep
	}
	if fb {
		analysis.ApplyExportFallback(res)
	}
	rep.MDGNodes = g.NumNodes()
	rep.MDGEdges = g.NumEdges()
	rep.GraphTime = time.Since(start)

	detb := b
	if aborted {
		detb = b.DeadlineOnly()
	}
	// One detection pass over the stitched, linked graph (per-fragment
	// detection caching does not apply: findings can span packages).
	detectInto(rep, res, cfgq, engine, detb)
	rep.Findings = queries.SortFindings(rep.Findings)
	annotateTreeProvenance(rep, rr, tree, ln)

	b.CheckDeadline()
	switch budget.ClassOf(b.Err()) {
	case budget.ClassTimeout:
		rep.TimedOut = true
		rep.Incomplete = true
		if rep.Failure == budget.ClassNone {
			rep.Failure = budget.ClassTimeout
		}
	case budget.ClassCanceled:
		rep.Incomplete = true
		if rep.Failure == budget.ClassNone {
			rep.Failure = budget.ClassCanceled
		}
	}

	// Stale-key invalidation within the tree namespace (mirrors the
	// per-component rule; other-mode keys are untouched).
	if !aborted {
		for k := range st.frags {
			if strings.HasPrefix(k, treeKeyPrefix) && !currentKeys[k] {
				delete(st.frags, k)
				st.stats.EvictedFragments++
			}
		}
	}
	rep.IncrStats = st.statsPtr()
	return rep
}

// treePackageKey identifies one package's fragment by its directory,
// its files' content hashes, and the analysis options shaping it.
func treePackageKey(dir string, rels []string, hashes [][sha256.Size]byte, aoptsKey string) string {
	h := sha256.New()
	h.Write([]byte(aoptsKey))
	h.Write([]byte{0})
	h.Write([]byte(dir))
	h.Write([]byte{0})
	for i, rel := range rels {
		h.Write([]byte(rel))
		h.Write([]byte{0})
		h.Write(hashes[i][:])
	}
	return treeKeyPrefix + fmt.Sprintf("%x", h.Sum(nil))
}

// ---------------------------------------------------------------------------
// Cross-package linker
// ---------------------------------------------------------------------------

// treeLinker grafts cross-package flows onto a stitched graph. All
// lookups are read-only graph queries (never the lazy-extending AP),
// and every added edge replays one the combined whole-program analysis
// would have created: resolved-require value edges, placeholder
// property flows, and call-summary linking into dependency functions.
type treeLinker struct {
	g     *mdg.Graph
	tree  *deptree.Tree
	byLoc map[mdg.Loc]*analysis.FuncSummary
	// ph maps each stitched placeholder module node to the package
	// that required it and the (bare) specifier it used.
	ph map[mdg.Loc]phInfo
	// fileEnv maps each module file to its stitched CommonJS globals.
	fileEnv map[string]analysis.ModuleLocs
	// resolved maps placeholder-derived nodes (placeholders and their
	// lazy property nodes) to the real value set they stand for.
	resolved map[mdg.Loc][]mdg.Loc
	// fileVals memoizes moduleVals per target file; a nil entry marks
	// in-progress computation, cutting require cycles.
	fileVals map[string][]mdg.Loc
	phVals   map[mdg.Loc][]mdg.Loc
	phBusy   map[mdg.Loc]bool
}

type phInfo struct {
	pkg  *deptree.Package
	spec string
}

// linkTree builds the merged analysis result for a stitched tree and
// runs the cross-package linker over it.
func linkTree(g *mdg.Graph, remaps []map[mdg.Loc]mdg.Loc, lives []treeLive, tree *deptree.Tree, anyReal bool) (*analysis.Result, *treeLinker) {
	ln := &treeLinker{
		g:        g,
		tree:     tree,
		byLoc:    make(map[mdg.Loc]*analysis.FuncSummary),
		ph:       make(map[mdg.Loc]phInfo),
		fileEnv:  make(map[string]analysis.ModuleLocs),
		resolved: make(map[mdg.Loc][]mdg.Loc),
		fileVals: make(map[string][]mdg.Loc),
		phVals:   make(map[mdg.Loc][]mdg.Loc),
		phBusy:   make(map[mdg.Loc]bool),
	}

	// Merged result: per-scan summary copies with stitched locations
	// (cached fragment summaries are shared across scans and must not
	// be mutated), keyed by package dir so same-named functions in
	// different packages cannot collide.
	merged := make(map[string]*analysis.FuncSummary)
	res := &analysis.Result{Graph: g, Functions: merged, HasRealExports: anyReal}
	rm := func(remap map[mdg.Loc]mdg.Loc, l mdg.Loc) mdg.Loc {
		if l == mdg.NoLoc {
			return mdg.NoLoc
		}
		return remap[l]
	}
	for i, lv := range lives {
		remap := remaps[i]
		for fname, fn := range lv.fe.functions {
			nf := &analysis.FuncSummary{
				Loc:      rm(remap, fn.Loc),
				ThisLoc:  rm(remap, fn.ThisLoc),
				RetLoc:   rm(remap, fn.RetLoc),
				Exported: lv.fe.realExported[fname],
			}
			for _, p := range fn.Params {
				nf.Params = append(nf.Params, rm(remap, p))
			}
			merged[lv.pkg.Dir+"|"+fname] = nf
			ln.byLoc[nf.Loc] = nf
			if n := g.Node(nf.Loc); n != nil {
				n.Exported = nf.Exported
			}
		}
		for spec, ml := range lv.fe.externals {
			ln.ph[rm(remap, ml)] = phInfo{pkg: lv.pkg, spec: spec}
		}
		for file, me := range lv.fe.modEnv {
			ln.fileEnv[file] = analysis.ModuleLocs{
				Module:  rm(remap, me.Module),
				Exports: rm(remap, me.Exports),
			}
		}
	}

	ln.graft(lives, remaps)
	return res, ln
}

// graft runs the three linking passes in deterministic order.
func (ln *treeLinker) graft(lives []treeLive, remaps []map[mdg.Loc]mdg.Loc) {
	// Pass 1 — require grafting: every require('pkg') call node gains
	// value edges to the dependency's real exports, replaying the
	// resolved-require branch of the abstract interpreter.
	phs := make([]mdg.Loc, 0, len(ln.ph))
	for ml := range ln.ph {
		phs = append(phs, ml)
	}
	sort.Slice(phs, func(i, j int) bool { return phs[i] < phs[j] })
	for _, ml := range phs {
		vals := ln.resolvePlaceholder(ml)
		if len(vals) == 0 {
			continue
		}
		ln.resolved[ml] = vals
		ins := append([]mdg.Edge(nil), ln.g.In(ml)...)
		for _, e := range ins {
			if e.Type != mdg.Dep {
				continue
			}
			cn := ln.g.Node(e.From)
			if cn == nil || cn.Kind != mdg.KindCall || cn.CallName != "require" {
				continue
			}
			for _, v := range vals {
				ln.g.AddDep(e.From, v)
			}
		}
	}

	// Pass 2 — property grafting: lazy property nodes hanging off a
	// placeholder (require('dep').f reads) receive the dependency's
	// real property values, transitively through nested objects.
	type workItem struct {
		node mdg.Loc
		vals []mdg.Loc
	}
	queue := make([]workItem, 0, len(phs))
	for _, ml := range phs {
		if vals := ln.resolved[ml]; len(vals) > 0 {
			queue = append(queue, workItem{ml, vals})
		}
	}
	seen := map[mdg.Loc]bool{}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if seen[it.node] {
			continue
		}
		seen[it.node] = true
		outs := append([]mdg.Edge(nil), ln.g.Out(it.node)...)
		for _, e := range outs {
			if e.Type != mdg.Prop {
				continue
			}
			pn := e.To
			var tv []mdg.Loc
			for _, r := range it.vals {
				tv = append(tv, ln.g.Lookup(r, e.Prop).Values...)
			}
			tv = ln.expandLocs(tv)
			if len(tv) == 0 {
				continue
			}
			for _, v := range tv {
				ln.g.AddDep(v, pn)
			}
			ln.resolved[pn] = dedupeSortedLocs(append(ln.resolved[pn], tv...))
			if !seen[pn] {
				queue = append(queue, workItem{pn, ln.resolved[pn]})
			}
		}
	}

	// Pass 3 — call grafting: calls whose abstract callee set contains
	// a placeholder-derived node are linked to the real dependency
	// function summaries, replaying the interpreter's summary linking
	// (argument → parameter, this → ThisLoc, RetLoc → call).
	for i, lv := range lives {
		remap := remaps[i]
		cls := make([]mdg.Loc, 0, len(lv.fe.calleeLocs))
		for cl := range lv.fe.calleeLocs {
			cls = append(cls, cl)
		}
		sort.Slice(cls, func(a, b int) bool { return cls[a] < cls[b] })
		for _, cl := range cls {
			ncl := remap[cl]
			cn := ln.g.Node(ncl)
			if cn == nil {
				continue
			}
			var this []mdg.Loc
			for _, tl := range lv.fe.callThis[cl] {
				this = append(this, remap[tl])
			}
			for _, x := range lv.fe.calleeLocs[cl] {
				for _, t := range ln.resolved[remap[x]] {
					sum := ln.byLoc[t]
					if sum == nil {
						continue
					}
					for ai, als := range cn.CallArgs {
						if ai >= len(sum.Params) {
							break
						}
						for _, al := range als {
							ln.g.AddDep(al, sum.Params[ai])
						}
					}
					for _, tl := range this {
						ln.g.AddDep(tl, sum.ThisLoc)
					}
					ln.g.AddDep(sum.RetLoc, ncl)
				}
			}
		}
	}
}

// resolvePlaceholder resolves one placeholder module node to the real
// export values of its dependency ("expanded": nested placeholders in
// re-export chains are resolved recursively, cycle-safe). External or
// unusable targets yield nil — the placeholder stays opaque, exactly
// like an unresolved require in a single-package scan.
func (ln *treeLinker) resolvePlaceholder(ml mdg.Loc) []mdg.Loc {
	if v, ok := ln.phVals[ml]; ok {
		return v
	}
	if ln.phBusy[ml] {
		return nil
	}
	ln.phBusy[ml] = true
	defer delete(ln.phBusy, ml)
	info, ok := ln.ph[ml]
	var vals []mdg.Loc
	if ok {
		if target, err := ln.tree.Resolve(info.pkg, info.spec); err == nil {
			vals = ln.moduleVals(target)
		}
	}
	ln.phVals[ml] = vals
	return vals
}

// moduleVals reproduces the resolved-require value set of the
// interpreter: the module's exports object plus everything any
// version of the module object holds under "exports".
func (ln *treeLinker) moduleVals(file string) []mdg.Loc {
	if v, ok := ln.fileVals[file]; ok {
		return v
	}
	ln.fileVals[file] = nil // in-progress: cuts require cycles
	me, ok := ln.fileEnv[file]
	if !ok {
		return nil
	}
	raw := []mdg.Loc{me.Exports}
	for _, mv := range allGraphVersions(ln.g, me.Module) {
		raw = append(raw, ln.g.Lookup(mv, "exports").Values...)
	}
	out := ln.expandLocs(raw)
	ln.fileVals[file] = out
	return out
}

// expandLocs replaces placeholder module nodes in a value set with
// their resolved dependency exports (recursively), drops the
// placeholders themselves, and dedupes in sorted order.
func (ln *treeLinker) expandLocs(ls []mdg.Loc) []mdg.Loc {
	var out []mdg.Loc
	for _, l := range ls {
		if _, isPH := ln.ph[l]; isPH {
			out = append(out, ln.resolvePlaceholder(l)...)
			continue
		}
		out = append(out, l)
	}
	return dedupeSortedLocs(out)
}

// allGraphVersions walks the version-successor closure of l (the
// linker's counterpart of the interpreter's allVersions).
func allGraphVersions(g *mdg.Graph, l mdg.Loc) []mdg.Loc {
	var out []mdg.Loc
	seen := map[mdg.Loc]bool{}
	var walk func(v mdg.Loc)
	walk = func(v mdg.Loc) {
		if seen[v] {
			return
		}
		seen[v] = true
		out = append(out, v)
		for _, s := range g.VersionSuccessors(v) {
			walk(s)
		}
	}
	walk(l)
	return out
}

// dedupeSortedLocs sorts and dedupes a location set (deterministic
// iteration for every graft pass).
func dedupeSortedLocs(ls []mdg.Loc) []mdg.Loc {
	if len(ls) == 0 {
		return nil
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := ls[:1]
	for _, l := range ls[1:] {
		if l != out[len(out)-1] {
			out = append(out, l)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Tree provenance
// ---------------------------------------------------------------------------

// annotateTreeProvenance attaches call-path provenance with uniform
// pkg:file:name hop qualification (same-named functions in different
// dependencies cannot collide) and a dependency-hop path: the chain of
// packages the call path crosses, root first. Every tree finding
// carries at least the sink's owning package.
func annotateTreeProvenance(rep *Report, rr *reach.Result, tree *deptree.Tree, ln *treeLinker) {
	for i := range rep.Findings {
		f := &rep.Findings[i]
		var hops []string
		entry := "(unresolved)"
		fallback := true
		if rr != nil && rr.Exports != nil {
			if e, hs, ok := rr.Exports.PathTo(f.SinkFile, f.SinkLine); ok {
				entry, hops, fallback = e, hs, rr.Fallback
			} else {
				fallback = rr.Fallback
			}
		}
		qhops := make([]string, len(hops))
		depPath := []string{}
		lastPkg := ""
		addPkg := func(p *deptree.Package) {
			if p == nil {
				return
			}
			label := treePkgLabel(p)
			if label != lastPkg {
				depPath = append(depPath, label)
				lastPkg = label
			}
		}
		// The entry hop chain starts at the root package's API in the
		// common case; record each boundary crossing in order.
		for j, h := range hops {
			file := h
			if idx := strings.Index(h, ":"); idx >= 0 {
				file = h[:idx]
			}
			owner := tree.Owner(file)
			pkgName := "?"
			if owner != nil {
				pkgName = treePkgName(owner)
			}
			qhops[j] = pkgName + ":" + h
			addPkg(owner)
		}
		// The sink's own package always terminates the path, resolved
		// provenance or not — a tree finding is never package-less.
		addPkg(tree.Owner(f.SinkFile))
		if len(depPath) == 0 {
			depPath = append(depPath, "(unresolved)")
		}
		f.Provenance = queries.Provenance{
			Entry:    entry,
			Hops:     qhops,
			Fallback: fallback,
			DepPath:  depPath,
		}
		if len(qhops) > rep.ProvenanceDepth {
			rep.ProvenanceDepth = len(qhops)
		}
	}
}

// treePkgName names a package for hop qualification ("(root)" for the
// tree root when it has no package.json name).
func treePkgName(p *deptree.Package) string {
	if p.Name != "" {
		return p.Name
	}
	if p.Dir == "" {
		return "(root)"
	}
	return p.Dir
}

// treePkgLabel renders one dependency-path hop: the package name, its
// version when known, and the node_modules directory that supplied it.
func treePkgLabel(p *deptree.Package) string {
	name := treePkgName(p)
	if p.Dir == "" {
		return name
	}
	if p.Version != "" {
		return fmt.Sprintf("%s@%s (%s)", name, p.Version, p.Dir)
	}
	return fmt.Sprintf("%s (%s)", name, p.Dir)
}
