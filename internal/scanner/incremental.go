package scanner

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/mdg"
	"repro/internal/queries"
	"repro/internal/reach"
	"repro/internal/store"
)

// IncrementalStats counts what the incremental state reused and
// rebuilt, cumulatively over its lifetime.
type IncrementalStats struct {
	// Front-end (parse/normalize/CFG) cache traffic.
	FrontEndHits, FrontEndMisses int
	// Fragment (per require-component MDG) cache traffic. A fragment
	// miss is a rebuild: the component's files changed (or were never
	// seen), so its graph was re-analyzed from the lowered programs.
	FragmentHits, FragmentMisses int
	// Detection-result cache traffic (per fragment × engine ×
	// export-fallback bit).
	DetectHits, DetectMisses int
	// Entries dropped because their files disappeared from the
	// package (EvictedFiles) or their component key went stale
	// (EvictedFragments).
	EvictedFiles, EvictedFragments int
	// Persistent-store traffic (zero unless a store is attached).
	// StoreHits are entries served from disk instead of rebuilt;
	// StoreQuarantined counts records dropped for failing a CRC or
	// decode — each one a corruption turned into a cold rebuild
	// instead of a wrong finding. StoreErrors counts failed writes
	// (ENOSPC and injected faults): the entry stayed in memory, the
	// disk missed a speedup.
	StoreHits, StoreMisses, StorePuts int
	StoreQuarantined, StoreErrors     int
}

// Rebuilds returns the number of fragment rebuilds (the miss count).
func (s IncrementalStats) Rebuilds() int { return s.FragmentMisses }

// Add accumulates other into s (used by StatePool aggregation and
// metrics sweeps).
func (s *IncrementalStats) Add(o IncrementalStats) {
	s.FrontEndHits += o.FrontEndHits
	s.FrontEndMisses += o.FrontEndMisses
	s.FragmentHits += o.FragmentHits
	s.FragmentMisses += o.FragmentMisses
	s.DetectHits += o.DetectHits
	s.DetectMisses += o.DetectMisses
	s.EvictedFiles += o.EvictedFiles
	s.EvictedFragments += o.EvictedFragments
	s.StoreHits += o.StoreHits
	s.StoreMisses += o.StoreMisses
	s.StorePuts += o.StorePuts
	s.StoreQuarantined += o.StoreQuarantined
	s.StoreErrors += o.StoreErrors
}

// IncrementalState carries everything a package's re-scans can reuse:
// the per-file front end, per-file dependency facts, per-component MDG
// fragments (immutable mdg.Fragment snapshots keyed by the component
// files' content hashes), and per-fragment detection results. One
// state serves one logical package; all methods are safe for
// concurrent use (a scan holds the state's lock end to end, so
// concurrent scans of the same state serialize).
type IncrementalState struct {
	mu    sync.Mutex
	cache *Cache
	facts map[string]*factsEntry
	frags map[string]*fragEntry
	stats IncrementalStats
	// store, when attached, backs the fragment/detect/facts families
	// on disk (read-through on miss, write-through on clean build).
	// See persist.go.
	store *store.Store
}

// NewIncrementalState returns an empty per-package incremental state.
func NewIncrementalState() *IncrementalState {
	return &IncrementalState{
		cache: NewCache(),
		facts: make(map[string]*factsEntry),
		frags: make(map[string]*fragEntry),
	}
}

// Stats returns a snapshot of the cumulative counters.
func (st *IncrementalState) Stats() IncrementalStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.snapshotStats()
}

func (st *IncrementalState) snapshotStats() IncrementalStats {
	s := st.stats
	s.FrontEndHits, s.FrontEndMisses = st.cache.Stats()
	return s
}

// Fragments returns the number of cached MDG fragments (test hook).
func (st *IncrementalState) Fragments() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.frags)
}

// FrontEnd exposes the state's front-end cache (test hook).
func (st *IncrementalState) FrontEnd() *Cache { return st.cache }

type factsEntry struct {
	hash  [sha256.Size]byte
	facts *fileFacts
}

// fragEntry is one cached require-component: an immutable graph
// snapshot plus the function summaries and export facts needed to
// rehydrate an analysis result for detection.
type fragEntry struct {
	key  string
	rels []string
	frag *mdg.Fragment
	// functions are shared mutable summaries (their Exported bit is
	// flipped when the package-wide export fallback toggles);
	// realExported records the build-time truth they are reset from.
	functions    map[string]*analysis.FuncSummary
	realExported map[string]bool
	hasReal      bool
	detect       map[detectKey]*detectResult
	// Cross-package linker side tables (tree mode): unresolved require
	// placeholders, per-call callee/this value sets, and per-module
	// CommonJS globals. Locations are fragment-local; ScanTree
	// translates them through the stitch remap (see analysis.Result).
	externals  map[string]mdg.Loc
	calleeLocs map[mdg.Loc][]mdg.Loc
	callThis   map[mdg.Loc][]mdg.Loc
	modEnv     map[string]analysis.ModuleLocs
}

type detectKey struct {
	engine   Engine
	fallback bool
	cfg      *queries.Config
}

// detectResult is a cached detection outcome for one fragment. Only
// complete runs (no budget interference) are cached.
type detectResult struct {
	findings    []queries.Finding
	truncated   int
	fellBack    bool
	fallbackErr error
	err         error
	failure     budget.Class
}

// StatePool hands out one IncrementalState per package name — the
// shape corpus sweeps need (metrics.SweepGraphJS with
// Options.IncrementalPool, graphjs -incremental, graphjsd's process-
// wide warm pool). A pool can be bounded (SetLimits) so a long-lived
// daemon cannot grow without limit: least-recently-used package
// states are evicted when the entry or estimated-byte cap is
// exceeded. With a store attached (AttachStore), eviction is cheap to
// recover from — the evicted state's fragments and detection results
// live on disk and reload on the package's next scan.
type StatePool struct {
	mu     sync.Mutex
	states map[string]*IncrementalState
	// lastUse orders states for LRU eviction (tick is a logical clock:
	// monotonic under mu, no wall-clock reads).
	lastUse map[string]int64
	tick    int64
	store   *store.Store

	maxStates int
	maxBytes  int64

	evictedStates int64
	evictedBytes  int64
}

// NewStatePool returns an empty, unbounded pool.
func NewStatePool() *StatePool {
	return &StatePool{
		states:  make(map[string]*IncrementalState),
		lastUse: make(map[string]int64),
	}
}

// SetLimits bounds the pool: at most maxStates package states and (an
// estimate of) maxBytes of retained cache memory; zero means
// unlimited on that axis. Exceeding either evicts least-recently-used
// states (never the one being returned).
func (p *StatePool) SetLimits(maxStates int, maxBytes int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.maxStates = maxStates
	p.maxBytes = maxBytes
}

// AttachStore connects every state in the pool — present and future —
// to the persistent store. nil detaches.
func (p *StatePool) AttachStore(s *store.Store) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.store = s
	for _, st := range p.states {
		st.AttachStore(s)
	}
}

// Store returns the attached persistent store (nil if none).
func (p *StatePool) Store() *store.Store {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.store
}

// Save flushes the attached store to disk. Scans write through as
// they go, so this is a group-commit point (drain, shutdown), not a
// bulk dump.
func (p *StatePool) Save() error {
	s := p.Store()
	if s == nil {
		return nil
	}
	return s.Sync()
}

// Get returns the state for name, creating it on first use, and
// enforces the pool's limits.
func (p *StatePool) Get(name string) *IncrementalState {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.states[name]
	if st == nil {
		st = NewIncrementalState()
		st.store = p.store
		p.states[name] = st
	}
	p.tick++
	p.lastUse[name] = p.tick
	p.enforceLimits(name)
	return st
}

// enforceLimits evicts least-recently-used states (never keep) until
// both caps hold. Called under p.mu.
func (p *StatePool) enforceLimits(keep string) {
	if p.maxStates <= 0 && p.maxBytes <= 0 {
		return
	}
	var total int64
	sizes := make(map[string]int64, len(p.states))
	if p.maxBytes > 0 {
		for name, st := range p.states {
			sz := st.EstimateBytes()
			sizes[name] = sz
			total += sz
		}
	}
	for (p.maxStates > 0 && len(p.states) > p.maxStates) ||
		(p.maxBytes > 0 && total > p.maxBytes) {
		victim := ""
		var oldest int64
		for name := range p.states {
			if name == keep {
				continue
			}
			if t := p.lastUse[name]; victim == "" || t < oldest {
				victim, oldest = name, t
			}
		}
		if victim == "" {
			return // only keep remains; it is never evicted
		}
		sz := sizes[victim]
		if p.maxBytes > 0 && sz == 0 {
			sz = p.states[victim].EstimateBytes()
		}
		delete(p.states, victim)
		delete(p.lastUse, victim)
		p.evictedStates++
		p.evictedBytes += sz
		total -= sz
	}
}

// Evictions reports how many package states (and how many estimated
// bytes) the pool's limits have evicted so far.
func (p *StatePool) Evictions() (states int64, bytes int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.evictedStates, p.evictedBytes
}

// Len returns the number of package states in the pool.
func (p *StatePool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.states)
}

// Stats aggregates the counters of every state in the pool.
func (p *StatePool) Stats() IncrementalStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out IncrementalStats
	for _, st := range p.states {
		out.Add(st.Stats())
	}
	return out
}

// EstimateBytes approximates the memory retained by this state's
// caches. It is a sizing heuristic for pool limits, not an exact
// accounting: fragments dominate (nodes and edges at struct size plus
// slice overhead), front-end entries are charged per lowered
// statement, facts and detection entries at flat rates.
func (st *IncrementalState) EstimateBytes() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	var b int64
	for _, fe := range st.frags {
		if fe.frag != nil {
			b += int64(fe.frag.NumNodes())*112 + int64(fe.frag.NumEdges())*48
		}
		b += int64(len(fe.functions)) * 96
		for _, dr := range fe.detect {
			b += 128 + int64(len(dr.findings))*160
		}
	}
	b += st.cache.EstimateBytes()
	b += int64(len(st.facts)) * 256
	return b
}

// scan is the incremental counterpart of scanFiles: same inputs, same
// report contract, but re-analysis is limited to the require-
// components whose files changed since the previous scan of this
// state. Equivalence with a cold scan (same findings, same failure
// classification) is enforced by the mutation harness in
// internal/metrics; the known report-level difference is that
// MDGNodes/MDGEdges sum per-fragment sizes.
func (st *IncrementalState) scan(files []SourceFile, name string, opts Options, preErr error) *Report {
	st.mu.Lock()
	defer st.mu.Unlock()

	cfgq := opts.Config
	if cfgq == nil {
		cfgq = queries.DefaultConfig()
	}
	rep := &Report{Name: name, Err: preErr}
	engine, err := ParseEngine(string(opts.Engine))
	if err != nil {
		rep.Err = err
		return rep
	}
	rep.Engine = engine
	b := newBudget(opts, name)
	start := time.Now()

	// Front end, through the state's cache.
	type feItem struct {
		rel   string
		entry *cacheEntry
	}
	var items []feItem
	keep := make(map[string]bool, len(files))
	ferr := budget.Guard("front-end", func() error {
		for _, f := range files {
			keep[f.Rel] = true
			entry, feErr := st.cache.frontEnd(f.Rel, f.Src, b)
			if feErr != nil {
				switch budget.ClassOf(feErr) {
				case budget.ClassTimeout, budget.ClassBudget, budget.ClassCanceled:
					return feErr
				}
				if rep.Err == nil {
					rep.Err = fmt.Errorf("scanner: parse %s: %w", f.Rel, feErr)
					rep.Failure = budget.ClassParse
				}
				continue
			}
			rep.LoC += entry.loc
			rep.ASTNodes += entry.astNodes
			rep.CoreStmts += entry.coreStmts
			rep.CFGNodes += entry.cfgNodes
			rep.CFGEdges += entry.cfgEdges
			items = append(items, feItem{f.Rel, entry})
		}
		b.CheckDeadline()
		return b.Err()
	})
	// Deleted files are observable now: their front-end entries and
	// facts must go, so nothing stale can join a later partition.
	st.stats.EvictedFiles += st.cache.EvictExcept(keep)
	for rel := range st.facts {
		if !keep[rel] {
			delete(st.facts, rel)
		}
	}
	if ferr != nil {
		frontEndFailure(rep, ferr, name)
		rep.GraphTime = time.Since(start)
		rep.IncrStats = st.statsPtr()
		return rep
	}
	if len(items) == 0 {
		rep.IncrStats = st.statsPtr()
		return rep
	}

	progs := make([]*core.Program, len(items))
	for i, it := range items {
		progs[i] = it.entry.prog
	}

	// Whole-package reach closure: cheap and cross-file, so it is
	// recomputed from the (cached) lowered programs on every scan
	// rather than stitched from per-file summaries.
	skip := false
	var rr *reach.Result
	if gerr := budget.Guard("reach-gate", func() error {
		rr, skip = gateSkips(rep, progs, cfgq, opts, b)
		return nil
	}); gerr != nil {
		setFailure(rep, gerr, budget.ClassPanic)
		rep.GraphTime = time.Since(start)
		rep.IncrStats = st.statsPtr()
		return rep
	}
	if gateCanceled(rep, b) {
		rep.GraphTime = time.Since(start)
		rep.IncrStats = st.statsPtr()
		return rep
	}
	if skip {
		rep.GraphTime = time.Since(start)
		rep.IncrStats = st.statsPtr()
		return rep
	}

	// Per-file dependency facts (cached by content hash) and the
	// component partition.
	rels := make([]string, len(items))
	hashes := make([][sha256.Size]byte, len(items))
	factsList := make([]*fileFacts, len(items))
	for i, it := range items {
		rels[i] = it.rel
		hashes[i] = it.entry.hash
		fe := st.facts[it.rel]
		if fe == nil || fe.hash != it.entry.hash {
			facts, fromStore := st.loadFacts(it.entry.hash)
			if !fromStore {
				facts = extractFacts(it.entry.prog)
				st.saveFacts(it.entry.hash, facts)
			}
			fe = &factsEntry{hash: it.entry.hash, facts: facts}
			st.facts[it.rel] = fe
		}
		factsList[i] = fe.facts
	}
	comps := partitionComponents(rels, factsList)

	aopts := opts.Analysis
	if aopts.MaxLoopIter == 0 {
		aopts = analysis.DefaultOptions()
	}
	callerNoFallback := aopts.NoExportFallback
	aopts.NoExportFallback = true
	multiPass := aopts.ForceMultiPass || len(items) > 1
	aopts.ForceMultiPass = multiPass
	aoptsKey := fmt.Sprintf("v1|%d|%d|%t|%t", aopts.MaxLoopIter, aopts.StepBudget,
		aopts.TreatAllFunctionsAsExported, multiPass)
	aopts.Budget = b

	// Build or fetch each component's fragment. A budget cap mid-build
	// keeps the partial fragment for this scan's detection (mirroring
	// the cold scan's partial-graph detection) but never caches it.
	type liveFrag struct {
		fe     *fragEntry
		res    *analysis.Result // non-nil when built (possibly partially) this scan
		stored bool             // fe lives in st.frags (cacheable detection)
	}
	var lives []liveFrag
	currentKeys := make(map[string]bool, len(comps))
	aborted := false
	for _, comp := range comps {
		ckey := componentKey(comp, hashes, aoptsKey)
		currentKeys[ckey] = true
		if fe, ok := st.frags[ckey]; ok {
			st.stats.FragmentHits++
			lives = append(lives, liveFrag{fe: fe, stored: true})
			continue
		}
		// Warm restart: a fragment built by a previous process (or a
		// replica sharing the directory) serves from the store instead
		// of being rebuilt. Decode failure already quarantined and
		// reported a miss, so the cold path below is the only fallback.
		if fe, ok := st.loadFrag(ckey); ok {
			st.stats.FragmentHits++
			st.frags[ckey] = fe
			lives = append(lives, liveFrag{fe: fe, stored: true})
			continue
		}
		if aborted {
			continue // cap already tripped; only cached components join
		}
		st.stats.FragmentMisses++
		comprogs := make([]*core.Program, len(comp))
		crels := make([]string, len(comp))
		for j, i := range comp {
			comprogs[j] = progs[i]
			crels[j] = rels[i]
		}
		var res *analysis.Result
		if aerr := budget.Guard("analysis", func() error {
			res = analysis.AnalyzeModules(comprogs, aopts)
			return nil
		}); aerr != nil {
			setFailure(rep, aerr, budget.ClassPanic)
			rep.GraphTime = time.Since(start)
			rep.IncrStats = st.statsPtr()
			return rep
		}
		if res.TimedOut && b.Err() == nil {
			rep.TimedOut = true
			rep.Failure = budget.ClassBudget
			rep.GraphTime = time.Since(start)
			rep.IncrStats = st.statsPtr()
			return rep
		}
		b.CheckDeadline()
		if berr := b.Err(); berr != nil {
			if c := budget.ClassOf(berr); c == budget.ClassTimeout || c == budget.ClassCanceled {
				// Terminal for the whole scan; returning before
				// newFragEntry guarantees nothing half-built — and no
				// canceled result — ever enters the fragment cache.
				rep.Failure = c
				rep.TimedOut = c == budget.ClassTimeout
				rep.Incomplete = c == budget.ClassCanceled
				rep.GraphTime = time.Since(start)
				rep.IncrStats = st.statsPtr()
				return rep
			}
			// A step/node/edge cap: the fragment is incomplete. Use it
			// for this scan's best-effort detection but do NOT cache
			// it — a later uncapped scan must rebuild it in full.
			rep.Incomplete = true
			rep.Failure = budget.ClassOf(berr)
			aborted = true
			lives = append(lives, liveFrag{fe: partialFragEntry(ckey, crels, res), res: res})
			continue
		}
		fe := newFragEntry(ckey, crels, res)
		st.frags[ckey] = fe
		st.saveFrag(fe)
		lives = append(lives, liveFrag{fe: fe, res: res, stored: true})
	}

	// Package-wide export decision: the script fallback applies only
	// when no fragment has a real export (exactly the cold rule).
	anyReal := false
	for _, lv := range lives {
		if lv.fe.hasReal {
			anyReal = true
		}
	}
	fb := !anyReal && !aopts.TreatAllFunctionsAsExported && !callerNoFallback

	for _, lv := range lives {
		if lv.res != nil {
			rep.MDGNodes += lv.res.Graph.NumNodes()
			rep.MDGEdges += lv.res.Graph.NumEdges()
		} else {
			rep.MDGNodes += lv.fe.frag.NumNodes()
			rep.MDGEdges += lv.fe.frag.NumEdges()
		}
	}
	rep.GraphTime = time.Since(start)

	detb := b
	if aborted {
		detb = b.DeadlineOnly()
	}
	// Detection results are keyed by the caller's config pointer; a nil
	// Config means the canonical default (DefaultConfig allocates per
	// call, so keying on cfgq would never hit).
	for _, lv := range lives {
		dkey := detectKey{engine: engine, fallback: fb, cfg: opts.Config}
		if lv.stored {
			if dr, ok := lv.fe.detect[dkey]; ok {
				st.stats.DetectHits++
				mergeCachedDetect(rep, dr)
				continue
			}
			if dr, ok := st.loadDetect(lv.fe.key, engine, fb, opts.Config); ok {
				st.stats.DetectHits++
				lv.fe.detect[dkey] = dr
				mergeCachedDetect(rep, dr)
				continue
			}
		}
		st.stats.DetectMisses++
		res := lv.res
		if res != nil {
			if fb {
				analysis.ApplyExportFallback(res)
			}
		} else {
			res = rehydrate(lv.fe, fb)
		}
		scratch := &Report{Name: rep.Name, Engine: engine}
		detectInto(scratch, res, cfgq, engine, detb)
		mergeScratch(rep, scratch)
		if lv.stored && detb.Err() == nil && !scratch.Incomplete && !scratch.TimedOut {
			dr := &detectResult{
				findings:    scratch.Findings,
				truncated:   scratch.TruncatedSearches,
				fellBack:    scratch.FellBack,
				fallbackErr: scratch.FallbackErr,
				err:         scratch.Err,
				failure:     scratch.Failure,
			}
			lv.fe.detect[dkey] = dr
			st.saveDetect(lv.fe.key, engine, fb, opts.Config, dr)
		}
	}
	rep.Findings = queries.SortFindings(rep.Findings)
	// Provenance is recomputed from this scan's whole-package gate
	// result; merge paths append finding copies, so annotating here
	// can never corrupt cached detection entries.
	annotateProvenance(rep, rr)

	b.CheckDeadline()
	switch budget.ClassOf(b.Err()) {
	case budget.ClassTimeout:
		rep.TimedOut = true
		rep.Incomplete = true
		if rep.Failure == budget.ClassNone {
			rep.Failure = budget.ClassTimeout
		}
	case budget.ClassCanceled:
		rep.Incomplete = true
		if rep.Failure == budget.ClassNone {
			rep.Failure = budget.ClassCanceled
		}
	}

	// Fragment invalidation: after a complete scan, any component key
	// not part of the package anymore (changed or deleted files) is
	// stale for good — a changed file can never produce the old key
	// again without also reproducing the old content.
	if !aborted {
		for k := range st.frags {
			// Tree-mode fragments live in their own key namespace and
			// are invalidated by scanTree, never by a component scan.
			if strings.HasPrefix(k, treeKeyPrefix) {
				continue
			}
			if !currentKeys[k] {
				delete(st.frags, k)
				st.stats.EvictedFragments++
			}
		}
	}
	rep.IncrStats = st.statsPtr()
	return rep
}

// statsPtr snapshots the counters for a report.
func (st *IncrementalState) statsPtr() *IncrementalStats {
	s := st.snapshotStats()
	return &s
}

// componentKey identifies a component by its files' content hashes
// (which cover both path and source) plus the analysis options that
// shape the fragment.
func componentKey(comp []int, hashes [][sha256.Size]byte, aoptsKey string) string {
	h := sha256.New()
	h.Write([]byte(aoptsKey))
	for _, i := range comp {
		h.Write([]byte{0})
		h.Write(hashes[i][:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// newFragEntry snapshots a freshly built component into a cacheable
// fragment. Called only on clean builds.
func newFragEntry(key string, rels []string, res *analysis.Result) *fragEntry {
	fe := partialFragEntry(key, rels, res)
	fe.frag = mdg.SnapshotFragment(res.Graph)
	return fe
}

// partialFragEntry wraps a (possibly budget-truncated) build without a
// graph snapshot; it is used for this scan only and never cached.
func partialFragEntry(key string, rels []string, res *analysis.Result) *fragEntry {
	fe := &fragEntry{
		key:          key,
		rels:         rels,
		functions:    res.Functions,
		realExported: make(map[string]bool, len(res.Functions)),
		hasReal:      res.HasRealExports,
		detect:       make(map[detectKey]*detectResult),
		externals:    res.Externals,
		calleeLocs:   res.CalleeLocs,
		callThis:     res.CallThis,
		modEnv:       res.ModuleEnv,
	}
	for name, fn := range res.Functions {
		fe.realExported[name] = fn.Exported
	}
	return fe
}

// rehydrate rebuilds a detection-ready analysis result from a cached
// fragment: a fresh graph via the stitching API (a single-fragment
// stitch preserves locations, so the stored summaries stay valid), the
// export marks reset to the build-time truth, and the package-wide
// fallback applied if requested.
func rehydrate(fe *fragEntry, fallback bool) *analysis.Result {
	g, _ := mdg.Stitch(fe.frag)
	res := &analysis.Result{
		Graph: g, Functions: fe.functions, HasRealExports: fe.hasReal,
		Externals: fe.externals, CalleeLocs: fe.calleeLocs,
		CallThis: fe.callThis, ModuleEnv: fe.modEnv,
	}
	for name, fn := range fe.functions {
		fn.Exported = fe.realExported[name]
		if n := g.Node(fn.Loc); n != nil {
			n.Exported = fn.Exported
		}
	}
	if fallback {
		analysis.ApplyExportFallback(res)
	}
	return res
}

// mergeCachedDetect folds a cached detection result into the report.
func mergeCachedDetect(rep *Report, dr *detectResult) {
	rep.Findings = append(rep.Findings, dr.findings...)
	rep.TruncatedSearches += dr.truncated
	if dr.fellBack {
		rep.FellBack = true
		if rep.FallbackErr == nil {
			rep.FallbackErr = dr.fallbackErr
		}
	}
	if dr.err != nil && rep.Err == nil {
		rep.Err = dr.err
	}
	if dr.failure != budget.ClassNone && rep.Failure == budget.ClassNone {
		rep.Failure = dr.failure
	}
}

// mergeScratch folds a live per-fragment detection report into the
// package report.
func mergeScratch(rep, scratch *Report) {
	rep.Findings = append(rep.Findings, scratch.Findings...)
	rep.TruncatedSearches += scratch.TruncatedSearches
	rep.NativeTime += scratch.NativeTime
	rep.QueryEngineTime += scratch.QueryEngineTime
	rep.QueryTime += scratch.QueryTime
	if scratch.Incomplete {
		rep.Incomplete = true
	}
	if scratch.TimedOut {
		rep.TimedOut = true
	}
	if scratch.FellBack {
		rep.FellBack = true
		if rep.FallbackErr == nil {
			rep.FallbackErr = scratch.FallbackErr
		}
	}
	if scratch.Err != nil && rep.Err == nil {
		rep.Err = scratch.Err
	}
	if scratch.Failure != budget.ClassNone && rep.Failure == budget.ClassNone {
		rep.Failure = scratch.Failure
	}
}
