package scanner

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/queries"
)

const gitResetSrc = `
const { exec } = require('child_process');
function git_reset(config, op, branch_name, url) {
	var options = config[op];
	options[branch_name] = url;
	options.cmd = 'git reset HEAD~';
	exec(options.cmd + options.commit);
}
module.exports = git_reset;
`

func TestScanSourceEndToEnd(t *testing.T) {
	rep := ScanSource(gitResetSrc, "git_reset.js", Options{})
	if rep.Err != nil {
		t.Fatalf("err: %v", rep.Err)
	}
	if rep.TimedOut {
		t.Fatal("unexpected timeout")
	}
	var cwes []queries.CWE
	for _, f := range rep.Findings {
		cwes = append(cwes, f.CWE)
	}
	hasCI, hasPP := false, false
	for _, c := range cwes {
		if c == queries.CWECommandInjection {
			hasCI = true
		}
		if c == queries.CWEPrototypePollution {
			hasPP = true
		}
	}
	if !hasCI || !hasPP {
		t.Fatalf("findings = %v", rep.Findings)
	}
}

func TestScanMetrics(t *testing.T) {
	rep := ScanSource(gitResetSrc, "git_reset.js", Options{})
	if rep.LoC < 8 {
		t.Errorf("LoC = %d", rep.LoC)
	}
	if rep.ASTNodes <= 0 || rep.CFGNodes <= 0 || rep.MDGNodes <= 0 || rep.MDGEdges <= 0 {
		t.Errorf("metrics: %+v", rep)
	}
	if rep.TotalNodes() != rep.ASTNodes+rep.CFGNodes+rep.MDGNodes {
		t.Error("TotalNodes mismatch")
	}
	if rep.GraphTime <= 0 {
		t.Error("graph time not measured")
	}
}

func TestScanParseError(t *testing.T) {
	rep := ScanSource("var = broken", "bad.js", Options{})
	if rep.Err == nil {
		t.Fatal("expected parse error")
	}
}

func TestScanTimeoutViaStepBudget(t *testing.T) {
	rep := ScanSource(gitResetSrc, "t.js", Options{
		Analysis: analysis.Options{MaxLoopIter: 30, StepBudget: 2},
	})
	if !rep.TimedOut {
		t.Fatal("expected timeout")
	}
	if len(rep.Findings) != 0 {
		t.Fatal("timed-out scan must not report findings")
	}
}

func TestScanPackageDir(t *testing.T) {
	dir := t.TempDir()
	mustWrite(t, filepath.Join(dir, "index.js"), gitResetSrc)
	mustWrite(t, filepath.Join(dir, "util.js"), "function id(x) { return x; }\nmodule.exports = id;\n")
	// node_modules must be skipped.
	sub := filepath.Join(dir, "node_modules", "dep")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, filepath.Join(sub, "evil.js"), "function e(a) { eval(a); }\nmodule.exports = e;\n")

	rep := ScanPackage(dir, Options{})
	if rep.Err != nil {
		t.Fatalf("err: %v", rep.Err)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("no findings in package scan")
	}
	for _, f := range rep.Findings {
		if f.CWE == queries.CWECodeInjection {
			t.Fatal("node_modules must be excluded")
		}
	}
	if rep.LoC < 10 {
		t.Errorf("merged LoC = %d", rep.LoC)
	}
}

func TestScanWallClockTimeout(t *testing.T) {
	rep := ScanSource(gitResetSrc, "t.js", Options{Timeout: time.Nanosecond})
	if !rep.TimedOut {
		t.Fatal("expected wall-clock timeout")
	}
}

func TestBenignPackageClean(t *testing.T) {
	rep := ScanSource(`
function add(a, b) { return a + b; }
module.exports = add;
`, "add.js", Options{})
	if len(rep.Findings) != 0 {
		t.Fatalf("benign package flagged: %v", rep.Findings)
	}
}

func mustWrite(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestScanPackageCrossFile: a vulnerability whose source and sink live
// in different files of the same package must be found via the
// combined multi-module MDG.
func TestScanPackageCrossFile(t *testing.T) {
	dir := t.TempDir()
	mustWrite(t, filepath.Join(dir, "runner.js"), `
const { exec } = require('child_process');
function shellRun(c) { exec(c); }
module.exports = shellRun;
`)
	mustWrite(t, filepath.Join(dir, "index.js"), `
var run = require('./runner');
function entry(input) { run('git clone ' + input); }
module.exports = entry;
`)
	rep := ScanPackage(dir, Options{})
	if rep.Err != nil {
		t.Fatalf("err: %v", rep.Err)
	}
	var found *queries.Finding
	for i := range rep.Findings {
		if rep.Findings[i].CWE == queries.CWECommandInjection {
			found = &rep.Findings[i]
		}
	}
	if found == nil {
		t.Fatalf("cross-file command injection missed: %v", rep.Findings)
	}
	if found.SinkFile != "runner.js" {
		t.Errorf("sink file = %q, want runner.js", found.SinkFile)
	}
	if found.SinkLine != 3 {
		t.Errorf("sink line = %d, want 3", found.SinkLine)
	}
}

// TestScanRealisticFile scans a larger npm-style file end-to-end: the
// quoting helper is not a configured sanitizer, so the checkout flow is
// reported (over-approximation), while unrelated machinery stays quiet.
func TestScanRealisticFile(t *testing.T) {
	src := `
'use strict';
const { exec, spawn } = require('child_process');
const fs = require('fs');

const helpers = {
	quote(s) { return "'" + String(s) + "'"; },
};

class Repo {
	constructor(dir) { this.dir = dir; }
	status(cb) { exec('git status', cb); }
}

function checkout(branch, done) {
	exec('git checkout ' + helpers.quote(branch), done);
}

function logos(cb) {
	fs.readFile('./assets/logo.png', cb);
}

module.exports = { checkout, logos, Repo };
`
	rep := ScanSource(src, "repo.js", Options{})
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	var ci, pt int
	for _, f := range rep.Findings {
		switch f.CWE {
		case queries.CWECommandInjection:
			ci++
		case queries.CWEPathTraversal:
			pt++
		}
	}
	if ci == 0 {
		t.Fatalf("checkout flow must be reported: %v", rep.Findings)
	}
	if pt != 0 {
		t.Fatalf("constant readFile must not be flagged: %v", rep.Findings)
	}
}

// TestScanRealisticWithSanitizer: declaring the quote helper as a
// sanitizer suppresses the report (§6).
func TestScanRealisticWithSanitizer(t *testing.T) {
	src := `
const { exec } = require('child_process');
function quote(s) { return "'" + String(s) + "'"; }
function checkout(branch, done) {
	exec('git checkout ' + quote(branch), done);
}
module.exports = checkout;
`
	cfg := queries.DefaultConfig()
	cfg.Sanitizers = []string{"quote"}
	rep := ScanSource(src, "repo.js", Options{Config: cfg})
	for _, f := range rep.Findings {
		if f.CWE == queries.CWECommandInjection {
			t.Fatalf("sanitized flow reported: %v", f)
		}
	}
}

// TestCacheCompositionality: re-scanning after editing one file re-runs
// the front end only for that file (§2's compositionality).
func TestCacheCompositionality(t *testing.T) {
	dir := t.TempDir()
	mustWrite(t, filepath.Join(dir, "a.js"), "function fa(x) { return x; }\nmodule.exports = fa;\n")
	mustWrite(t, filepath.Join(dir, "b.js"), "function fb(y) { return y; }\nmodule.exports = fb;\n")
	mustWrite(t, filepath.Join(dir, "c.js"), gitResetSrc)

	cache := NewCache()
	opts := Options{Cache: cache}

	rep1 := ScanPackage(dir, opts)
	if rep1.Err != nil {
		t.Fatal(rep1.Err)
	}
	hits, misses := cache.Stats()
	if hits != 0 || misses != 3 {
		t.Fatalf("first scan: hits=%d misses=%d", hits, misses)
	}

	// Unchanged re-scan: all hits.
	rep2 := ScanPackage(dir, opts)
	hits, misses = cache.Stats()
	if hits != 3 || misses != 3 {
		t.Fatalf("second scan: hits=%d misses=%d", hits, misses)
	}
	if len(rep2.Findings) != len(rep1.Findings) {
		t.Fatal("cached scan changed the findings")
	}

	// Edit one file: exactly one extra miss.
	mustWrite(t, filepath.Join(dir, "b.js"), "function fb(y) { return y + 1; }\nmodule.exports = fb;\n")
	rep3 := ScanPackage(dir, opts)
	hits, misses = cache.Stats()
	if hits != 5 || misses != 4 {
		t.Fatalf("third scan: hits=%d misses=%d", hits, misses)
	}
	if len(rep3.Findings) != len(rep1.Findings) {
		t.Fatal("edit changed unrelated findings")
	}
}

// TestCachedScanEqualsUncached: the cache must be observationally
// transparent.
func TestCachedScanEqualsUncached(t *testing.T) {
	dir := t.TempDir()
	mustWrite(t, filepath.Join(dir, "index.js"), gitResetSrc)
	plain := ScanPackage(dir, Options{})
	cached := ScanPackage(dir, Options{Cache: NewCache()})
	if plain.MDGNodes != cached.MDGNodes || plain.MDGEdges != cached.MDGEdges ||
		plain.ASTNodes != cached.ASTNodes || len(plain.Findings) != len(cached.Findings) {
		t.Fatalf("cache changed results: %+v vs %+v", plain, cached)
	}
}
