package scanner

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/queries"
)

const gitResetSrc = `
const { exec } = require('child_process');
function git_reset(config, op, branch_name, url) {
	var options = config[op];
	options[branch_name] = url;
	options.cmd = 'git reset HEAD~';
	exec(options.cmd + options.commit);
}
module.exports = git_reset;
`

func TestScanSourceEndToEnd(t *testing.T) {
	rep := ScanSource(gitResetSrc, "git_reset.js", Options{})
	if rep.Err != nil {
		t.Fatalf("err: %v", rep.Err)
	}
	if rep.TimedOut {
		t.Fatal("unexpected timeout")
	}
	var cwes []queries.CWE
	for _, f := range rep.Findings {
		cwes = append(cwes, f.CWE)
	}
	hasCI, hasPP := false, false
	for _, c := range cwes {
		if c == queries.CWECommandInjection {
			hasCI = true
		}
		if c == queries.CWEPrototypePollution {
			hasPP = true
		}
	}
	if !hasCI || !hasPP {
		t.Fatalf("findings = %v", rep.Findings)
	}
}

func TestScanMetrics(t *testing.T) {
	rep := ScanSource(gitResetSrc, "git_reset.js", Options{})
	if rep.LoC < 8 {
		t.Errorf("LoC = %d", rep.LoC)
	}
	if rep.ASTNodes <= 0 || rep.CFGNodes <= 0 || rep.MDGNodes <= 0 || rep.MDGEdges <= 0 {
		t.Errorf("metrics: %+v", rep)
	}
	if rep.TotalNodes() != rep.ASTNodes+rep.CFGNodes+rep.MDGNodes {
		t.Error("TotalNodes mismatch")
	}
	if rep.GraphTime <= 0 {
		t.Error("graph time not measured")
	}
}

func TestScanParseError(t *testing.T) {
	rep := ScanSource("var = broken", "bad.js", Options{})
	if rep.Err == nil {
		t.Fatal("expected parse error")
	}
}

func TestScanTimeoutViaStepBudget(t *testing.T) {
	rep := ScanSource(gitResetSrc, "t.js", Options{
		Analysis: analysis.Options{MaxLoopIter: 30, StepBudget: 2},
	})
	if !rep.TimedOut {
		t.Fatal("expected timeout")
	}
	if len(rep.Findings) != 0 {
		t.Fatal("timed-out scan must not report findings")
	}
}

func TestScanPackageDir(t *testing.T) {
	dir := t.TempDir()
	mustWrite(t, filepath.Join(dir, "index.js"), gitResetSrc)
	mustWrite(t, filepath.Join(dir, "util.js"), "function id(x) { return x; }\nmodule.exports = id;\n")
	// node_modules must be skipped.
	sub := filepath.Join(dir, "node_modules", "dep")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, filepath.Join(sub, "evil.js"), "function e(a) { eval(a); }\nmodule.exports = e;\n")

	rep := ScanPackage(dir, Options{})
	if rep.Err != nil {
		t.Fatalf("err: %v", rep.Err)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("no findings in package scan")
	}
	for _, f := range rep.Findings {
		if f.CWE == queries.CWECodeInjection {
			t.Fatal("node_modules must be excluded")
		}
	}
	if rep.LoC < 10 {
		t.Errorf("merged LoC = %d", rep.LoC)
	}
}

func TestScanWallClockTimeout(t *testing.T) {
	rep := ScanSource(gitResetSrc, "t.js", Options{Timeout: time.Nanosecond})
	if !rep.TimedOut {
		t.Fatal("expected wall-clock timeout")
	}
}

func TestBenignPackageClean(t *testing.T) {
	rep := ScanSource(`
function add(a, b) { return a + b; }
module.exports = add;
`, "add.js", Options{})
	if len(rep.Findings) != 0 {
		t.Fatalf("benign package flagged: %v", rep.Findings)
	}
}

func mustWrite(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestScanPackageCrossFile: a vulnerability whose source and sink live
// in different files of the same package must be found via the
// combined multi-module MDG.
func TestScanPackageCrossFile(t *testing.T) {
	dir := t.TempDir()
	mustWrite(t, filepath.Join(dir, "runner.js"), `
const { exec } = require('child_process');
function shellRun(c) { exec(c); }
module.exports = shellRun;
`)
	mustWrite(t, filepath.Join(dir, "index.js"), `
var run = require('./runner');
function entry(input) { run('git clone ' + input); }
module.exports = entry;
`)
	rep := ScanPackage(dir, Options{})
	if rep.Err != nil {
		t.Fatalf("err: %v", rep.Err)
	}
	var found *queries.Finding
	for i := range rep.Findings {
		if rep.Findings[i].CWE == queries.CWECommandInjection {
			found = &rep.Findings[i]
		}
	}
	if found == nil {
		t.Fatalf("cross-file command injection missed: %v", rep.Findings)
	}
	if found.SinkFile != "runner.js" {
		t.Errorf("sink file = %q, want runner.js", found.SinkFile)
	}
	if found.SinkLine != 3 {
		t.Errorf("sink line = %d, want 3", found.SinkLine)
	}
}

// TestScanRealisticFile scans a larger npm-style file end-to-end: the
// quoting helper is not a configured sanitizer, so the checkout flow is
// reported (over-approximation), while unrelated machinery stays quiet.
func TestScanRealisticFile(t *testing.T) {
	src := `
'use strict';
const { exec, spawn } = require('child_process');
const fs = require('fs');

const helpers = {
	quote(s) { return "'" + String(s) + "'"; },
};

class Repo {
	constructor(dir) { this.dir = dir; }
	status(cb) { exec('git status', cb); }
}

function checkout(branch, done) {
	exec('git checkout ' + helpers.quote(branch), done);
}

function logos(cb) {
	fs.readFile('./assets/logo.png', cb);
}

module.exports = { checkout, logos, Repo };
`
	rep := ScanSource(src, "repo.js", Options{})
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	var ci, pt int
	for _, f := range rep.Findings {
		switch f.CWE {
		case queries.CWECommandInjection:
			ci++
		case queries.CWEPathTraversal:
			pt++
		}
	}
	if ci == 0 {
		t.Fatalf("checkout flow must be reported: %v", rep.Findings)
	}
	if pt != 0 {
		t.Fatalf("constant readFile must not be flagged: %v", rep.Findings)
	}
}

// TestScanRealisticWithSanitizer: declaring the quote helper as a
// sanitizer suppresses the report (§6).
func TestScanRealisticWithSanitizer(t *testing.T) {
	src := `
const { exec } = require('child_process');
function quote(s) { return "'" + String(s) + "'"; }
function checkout(branch, done) {
	exec('git checkout ' + quote(branch), done);
}
module.exports = checkout;
`
	cfg := queries.DefaultConfig()
	cfg.Sanitizers = []string{"quote"}
	rep := ScanSource(src, "repo.js", Options{Config: cfg})
	for _, f := range rep.Findings {
		if f.CWE == queries.CWECommandInjection {
			t.Fatalf("sanitized flow reported: %v", f)
		}
	}
}

// TestCacheCompositionality: re-scanning after editing one file re-runs
// the front end only for that file (§2's compositionality).
func TestCacheCompositionality(t *testing.T) {
	dir := t.TempDir()
	mustWrite(t, filepath.Join(dir, "a.js"), "function fa(x) { return x; }\nmodule.exports = fa;\n")
	mustWrite(t, filepath.Join(dir, "b.js"), "function fb(y) { return y; }\nmodule.exports = fb;\n")
	mustWrite(t, filepath.Join(dir, "c.js"), gitResetSrc)

	cache := NewCache()
	opts := Options{Cache: cache}

	rep1 := ScanPackage(dir, opts)
	if rep1.Err != nil {
		t.Fatal(rep1.Err)
	}
	hits, misses := cache.Stats()
	if hits != 0 || misses != 3 {
		t.Fatalf("first scan: hits=%d misses=%d", hits, misses)
	}

	// Unchanged re-scan: all hits.
	rep2 := ScanPackage(dir, opts)
	hits, misses = cache.Stats()
	if hits != 3 || misses != 3 {
		t.Fatalf("second scan: hits=%d misses=%d", hits, misses)
	}
	if len(rep2.Findings) != len(rep1.Findings) {
		t.Fatal("cached scan changed the findings")
	}

	// Edit one file: exactly one extra miss.
	mustWrite(t, filepath.Join(dir, "b.js"), "function fb(y) { return y + 1; }\nmodule.exports = fb;\n")
	rep3 := ScanPackage(dir, opts)
	hits, misses = cache.Stats()
	if hits != 5 || misses != 4 {
		t.Fatalf("third scan: hits=%d misses=%d", hits, misses)
	}
	if len(rep3.Findings) != len(rep1.Findings) {
		t.Fatal("edit changed unrelated findings")
	}
}

// zeroTimings clears the wall-clock fields so reports can be compared
// byte for byte.
func zeroTimings(rep *Report) {
	rep.GraphTime = 0
	rep.QueryTime = 0
	rep.NativeTime = 0
	rep.QueryEngineTime = 0
	// Phase usage measures effort, not outcome: a warm cache hit
	// legitimately spends zero front-end steps.
	rep.Phases = nil
}

// TestCachedScanEqualsUncached: the front-end cache must be
// observationally transparent. Table-driven over every dataset
// template (all CWEs crossed with every behavioural class) plus the
// pathological crash corpus under deterministic step caps: the cached
// report must be byte-identical to the uncached one (timings aside),
// and the cache's hit/miss counters must grow monotonically.
func TestCachedScanEqualsUncached(t *testing.T) {
	type testCase struct {
		name string
		src  string
		opts Options
	}
	var cases []testCase
	g := dataset.NewGenForTest(9)
	for _, cwe := range queries.AllCWEs {
		for _, class := range differentialClasses {
			p := dataset.RenderForTest(g, cwe, class)
			cases = append(cases, testCase{p.Name, p.Source, Options{}})
		}
	}
	for _, p := range dataset.Pathological().Packages {
		// Deterministic caps, not wall clock: both runs trip (or not)
		// at exactly the same abstract step.
		cases = append(cases, testCase{p.Name, p.Source, Options{MaxSteps: 100000}})
	}

	cache := NewCache()
	prevHits, prevMisses := 0, 0
	for _, tc := range cases {
		files := []SourceFile{{Rel: "index.js", Src: tc.src}}
		plain := ScanFiles(files, tc.name, tc.opts)
		copts := tc.opts
		copts.Cache = cache
		cached := ScanFiles(files, tc.name, copts)
		zeroTimings(plain)
		zeroTimings(cached)
		if !reflect.DeepEqual(plain, cached) {
			t.Errorf("%s: cached report differs from uncached:\n%+v\nvs\n%+v", tc.name, cached, plain)
		}
		hits, misses := cache.Stats()
		if hits < prevHits || misses < prevMisses {
			t.Fatalf("%s: cache stats not monotone: %d/%d after %d/%d", tc.name, hits, misses, prevHits, prevMisses)
		}
		prevHits, prevMisses = hits, misses

		// A warm re-scan must hit and, when no budget is involved,
		// still produce the identical report.
		if tc.opts.MaxSteps == 0 {
			warm := ScanFiles(files, tc.name, copts)
			zeroTimings(warm)
			if !reflect.DeepEqual(plain, warm) {
				t.Errorf("%s: warm cached report differs:\n%+v\nvs\n%+v", tc.name, warm, plain)
			}
			hits2, _ := cache.Stats()
			if hits2 <= hits {
				t.Errorf("%s: warm re-scan did not hit the cache", tc.name)
			}
			prevHits = hits2
		}
	}
}
