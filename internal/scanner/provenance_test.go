package scanner

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/queries"
)

// assertProvenance enforces the report-level invariant: every finding
// carries either a resolved call path (entry + non-empty hop chain) or
// one of the explicit markers.
func assertProvenance(t *testing.T, rep *Report) {
	t.Helper()
	for _, f := range rep.Findings {
		p := f.Provenance
		if p.Entry == "" {
			t.Errorf("finding %s: empty provenance entry", f)
			continue
		}
		switch p.Entry {
		case "(unresolved)", "(fallback)":
			// Explicit markers may carry no hops.
		default:
			if len(p.Hops) == 0 {
				t.Errorf("finding %s: entry %q with empty hop chain", f, p.Entry)
			}
		}
	}
}

func TestFindingsCarryProvenance(t *testing.T) {
	rep := ScanSource(gitResetSrc, "git_reset.js", Options{})
	if rep.Err != nil || len(rep.Findings) == 0 {
		t.Fatalf("scan unusable: %+v", rep)
	}
	assertProvenance(t, rep)
	for _, f := range rep.Findings {
		if f.Provenance.Entry != "module.exports" {
			t.Errorf("finding %s: entry = %q, want module.exports", f, f.Provenance.Entry)
		}
		if len(f.Provenance.Hops) != 1 || !strings.HasSuffix(f.Provenance.Hops[0], ":git_reset") {
			t.Errorf("finding %s: hops = %v", f, f.Provenance.Hops)
		}
		if f.Provenance.Fallback {
			t.Errorf("finding %s: unexpected fallback marker", f)
		}
	}
	if rep.ProvenanceDepth != 1 {
		t.Errorf("ProvenanceDepth = %d, want 1", rep.ProvenanceDepth)
	}
	if rep.ExportCount != 1 {
		t.Errorf("ExportCount = %d, want 1", rep.ExportCount)
	}
}

func TestCallChainProvenanceDepth(t *testing.T) {
	src := `
var cp = require('child_process');
function sinker(c) { cp.exec(c); }
function mid(y) { sinker(y); }
function entry(x) { mid(x); }
module.exports = { fire: entry };
`
	rep := ScanSource(src, "chain.js", Options{Engine: EngineNative})
	if rep.Err != nil {
		t.Fatalf("err: %v", rep.Err)
	}
	assertProvenance(t, rep)
	for _, f := range rep.Findings {
		if f.Provenance.Entry != "exports.fire" {
			t.Errorf("entry = %q", f.Provenance.Entry)
		}
		want := []string{"chain.js:entry", "chain.js:mid", "chain.js:sinker"}
		if len(f.Provenance.Hops) != len(want) {
			t.Fatalf("hops = %v, want %v", f.Provenance.Hops, want)
		}
		for i := range want {
			if f.Provenance.Hops[i] != want[i] {
				t.Fatalf("hops = %v, want %v", f.Provenance.Hops, want)
			}
		}
	}
	if len(rep.Findings) > 0 && rep.ProvenanceDepth != 3 {
		t.Errorf("ProvenanceDepth = %d, want 3", rep.ProvenanceDepth)
	}
}

func TestFallbackProvenanceMarker(t *testing.T) {
	// No export evidence: the gate runs the fallback attack model and
	// findings carry the explicit marker instead of a resolved entry.
	src := `
var cp = require('child_process');
function attack(c) { cp.exec(c); }
`
	rep := ScanSource(src, "script.js", Options{})
	if rep.Err != nil {
		t.Fatalf("err: %v", rep.Err)
	}
	if !rep.ReachFallback {
		t.Fatalf("expected fallback attack model: %+v", rep)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("fallback attack model must still scan the script")
	}
	assertProvenance(t, rep)
	for _, f := range rep.Findings {
		if !f.Provenance.Fallback {
			t.Errorf("finding %s: fallback scans must mark provenance Fallback", f)
		}
		if f.Provenance.Entry != "(fallback)" {
			t.Errorf("finding %s: entry = %q, want (fallback)", f, f.Provenance.Entry)
		}
	}
}

func TestUngatedScanCarriesSameProvenance(t *testing.T) {
	gated := ScanSource(gitResetSrc, "git_reset.js", Options{})
	ungated := ScanSource(gitResetSrc, "git_reset.js", Options{NoReachGate: true})
	if gated.Err != nil || ungated.Err != nil {
		t.Fatalf("scans unusable: %v / %v", gated.Err, ungated.Err)
	}
	if len(gated.Findings) != len(ungated.Findings) {
		t.Fatalf("finding counts differ: %d vs %d", len(gated.Findings), len(ungated.Findings))
	}
	for i := range gated.Findings {
		g, u := gated.Findings[i].Provenance, ungated.Findings[i].Provenance
		if g.Entry != u.Entry || g.Fallback != u.Fallback || len(g.Hops) != len(u.Hops) {
			t.Errorf("provenance differs gated vs ungated: %+v vs %+v", g, u)
		}
	}
	if ungated.FuncsTotal == 0 {
		t.Error("ungated scans must still report gate counters")
	}
}

func TestIncrementalProvenance(t *testing.T) {
	st := NewIncrementalState()
	opts := Options{Incremental: st}
	var last *Report
	for i := 0; i < 2; i++ {
		last = ScanSource(gitResetSrc, "git_reset.js", opts)
		if last.Err != nil || len(last.Findings) == 0 {
			t.Fatalf("scan %d unusable: %+v", i, last)
		}
		assertProvenance(t, last)
	}
	cold := ScanSource(gitResetSrc, "git_reset.js", Options{})
	for i := range cold.Findings {
		c, w := cold.Findings[i].Provenance, last.Findings[i].Provenance
		if c.Entry != w.Entry || len(c.Hops) != len(w.Hops) {
			t.Errorf("warm provenance diverged from cold: %+v vs %+v", w, c)
		}
	}
}

func TestTemplateFindingsCarryProvenance(t *testing.T) {
	g := dataset.NewGenForTest(5)
	for _, cwe := range queries.AllCWEs {
		p := dataset.RenderForTest(g, cwe, dataset.ClassPlain)
		rep := ScanSource(p.Source, p.Name, Options{})
		if rep.Err != nil {
			t.Fatalf("%s: %v", p.Name, rep.Err)
		}
		assertProvenance(t, rep)
	}
}
