package scanner

import (
	"path"
	"strings"

	"repro/internal/core"
)

// This file computes the conservative file-dependency facts the
// incremental scanner partitions packages with. Two files must land in
// the same analysis fragment whenever the combined (cold) analysis
// could create a cross-file flow between them. There are exactly two
// kinds of channel in the analyzer:
//
//  1. require('./sibling') resolving to another package file — the
//     callee file's exports flow into the caller.
//  2. Shared global state. The analyzer lazily allocates one shared
//     node per *free* variable name (a name read where no scope binds
//     it) and one per external require specifier, in a root store that
//     persists across files. A file that assigns such a name rebinds
//     the root entry, and a file that updates (or dynamically looks
//     up) an object derived from such a node mutates structure every
//     other file sees.
//
// The extraction is deliberately conservative: over-approximating a
// channel merges two components that could have been analyzed apart —
// correct, just less incremental. Under-approximating would let an
// incremental scan diverge from a cold scan, which the
// mutation-equivalence harness (internal/metrics) exists to catch.
type fileFacts struct {
	// requires lists every literal require specifier in the file.
	requires []string
	// freeReads holds names possibly read while unbound — each one
	// makes the analyzer allocate a shared root node.
	freeReads map[string]bool
	// assigned holds every name the file assigns anywhere (top-level
	// or function body): if any other file free-reads the name, the
	// root binding exists by the second analysis pass and the
	// assignment rebinds it for everyone.
	assigned map[string]bool
	// mutated holds shared-root keys ("g:"+name / "m:"+spec) whose
	// object structure this file may mutate: a property update or a
	// dynamic lookup on a value derived from the shared node.
	mutated map[string]bool
	// readRoots holds every shared-root key the file references at
	// all.
	readRoots map[string]bool
}

// factsWalker tracks, per variable name, the set of shared-root keys
// the variable's value may derive from (flow-insensitive across the
// file, built to a fixpoint by extractFacts).
type factsWalker struct {
	f       *fileFacts
	derived map[string]map[string]bool
}

// extractFacts computes the dependency facts of one lowered file.
func extractFacts(prog *core.Program) *fileFacts {
	f := &fileFacts{
		freeReads: map[string]bool{},
		assigned:  map[string]bool{},
		mutated:   map[string]bool{},
		readRoots: map[string]bool{},
	}
	w := &factsWalker{f: f, derived: map[string]map[string]bool{}}
	// Derivation chains (x := shared; y := x.p; y.q := v) need a
	// fixpoint over the flow-insensitive derived sets; the chains are
	// short in practice, so a few passes converge. The free/assigned
	// sets are order-aware and identical every pass.
	for pass := 0; pass < 3; pass++ {
		before := w.derivedSize()
		bound := map[string]bool{"module": true, "exports": true}
		w.stmts(prog.Body, bound)
		if w.derivedSize() == before && pass > 0 {
			break
		}
	}
	return f
}

func (w *factsWalker) derivedSize() int {
	n := 0
	for _, s := range w.derived {
		n += len(s)
	}
	return n
}

// read records a read of e under bound and returns the shared-root
// keys the value may derive from.
func (w *factsWalker) read(e core.Expr, bound map[string]bool) map[string]bool {
	v, ok := e.(core.Var)
	if !ok {
		return nil
	}
	roots := map[string]bool{}
	if !bound[v.Name] {
		key := "g:" + v.Name
		w.f.freeReads[v.Name] = true
		w.f.readRoots[key] = true
		roots[key] = true
	}
	for k := range w.derived[v.Name] {
		roots[k] = true
	}
	return roots
}

// derive unions roots into the derivation set of name.
func (w *factsWalker) derive(name string, roots map[string]bool) {
	if len(roots) == 0 {
		return
	}
	d := w.derived[name]
	if d == nil {
		d = map[string]bool{}
		w.derived[name] = d
	}
	for k := range roots {
		d[k] = true
	}
}

// mutate marks every shared root in roots as structurally mutated.
func (w *factsWalker) mutate(roots map[string]bool) {
	for k := range roots {
		w.f.mutated[k] = true
	}
}

// assign records an assignment target: the name becomes bound from
// here on, and is a potential root rebinding if any sibling file
// free-reads it.
func (w *factsWalker) assign(name string, bound map[string]bool) {
	w.f.assigned[name] = true
	bound[name] = true
}

func copyBound(bound map[string]bool) map[string]bool {
	c := make(map[string]bool, len(bound))
	for k, v := range bound {
		c[k] = v
	}
	return c
}

// stmts walks a statement list in order, mirroring the analyzer's
// evaluation order (function bodies are analyzed inline at their
// definition). It mutates bound as bindings are introduced.
func (w *factsWalker) stmts(ss []core.Stmt, bound map[string]bool) {
	for _, s := range ss {
		w.stmt(s, bound)
	}
}

func (w *factsWalker) stmt(s core.Stmt, bound map[string]bool) {
	switch x := s.(type) {
	case *core.Assign:
		roots := w.read(x.E, bound)
		w.assign(x.X, bound)
		w.derive(x.X, roots)

	case *core.BinOp:
		w.read(x.L, bound)
		w.read(x.R, bound)
		w.assign(x.X, bound) // result is a fresh node, no derivation

	case *core.UnOp:
		w.read(x.E, bound)
		w.assign(x.X, bound)

	case *core.NewObj:
		w.assign(x.X, bound)

	case *core.Lookup:
		roots := w.read(x.Obj, bound)
		w.assign(x.X, bound)
		w.derive(x.X, roots) // property values of a shared object are shared

	case *core.DynLookup:
		roots := w.read(x.Obj, bound)
		w.read(x.Prop, bound)
		// APStar attaches the dynamic-property dependency to a star
		// node other files may share — a graph mutation the pollution
		// query observes.
		w.mutate(roots)
		w.assign(x.X, bound)
		w.derive(x.X, roots)

	case *core.Update:
		roots := w.read(x.Obj, bound)
		w.read(x.Val, bound)
		w.mutate(roots)

	case *core.DynUpdate:
		roots := w.read(x.Obj, bound)
		w.read(x.Prop, bound)
		w.read(x.Val, bound)
		w.mutate(roots)

	case *core.If:
		w.read(x.Cond, bound)
		thenB := copyBound(bound)
		w.stmts(x.Then, thenB)
		elseB := copyBound(bound)
		w.stmts(x.Else, elseB)
		// A name bound in only one branch may still be unbound after
		// the If: keep only bindings both branches (or the prefix)
		// established.
		for k := range thenB {
			if !bound[k] && elseB[k] {
				bound[k] = true
			}
		}

	case *core.While:
		w.read(x.Cond, bound)
		w.stmts(x.Body, copyBound(bound))

	case *core.ForIn:
		roots := w.read(x.Obj, bound)
		body := copyBound(bound)
		w.f.assigned[x.Key] = true
		body[x.Key] = true
		w.derive(x.Key, roots) // for-of values come from the object
		w.stmts(x.Body, body)

	case *core.Call:
		w.read(x.Callee, bound)
		if x.This != nil {
			w.read(x.This, bound)
		}
		for _, a := range x.Args {
			w.read(a, bound)
		}
		if x.CalleeName == "require" && len(x.Args) == 1 {
			if lit, ok := x.Args[0].(core.Lit); ok {
				key := "m:" + lit.Value
				w.f.requires = append(w.f.requires, lit.Value)
				w.f.readRoots[key] = true
				w.assign(x.X, bound)
				w.derive(x.X, map[string]bool{key: true})
				return
			}
		}
		w.assign(x.X, bound) // plain call results are fresh call nodes

	case *core.Return:
		if x.E != nil {
			w.read(x.E, bound)
		}

	case *core.FuncDef:
		// The analyzer binds the name before analyzing the body (so
		// recursion resolves), and analyzes the body inline.
		w.assign(x.Name, bound)
		body := copyBound(bound)
		for _, p := range x.Params {
			body[p] = true
		}
		body["this"] = true
		body["arguments"] = true
		w.stmts(x.Body, body)
	}
}

// resolveRequire mirrors analysis.resolveModule against a file
// universe: the files a relative specifier from curFile can resolve
// to. Ambiguous basename fallbacks return every candidate (the
// analyzer picks one nondeterministically, so the partition must
// conservatively merge them all).
func resolveRequire(universe map[string]bool, curFile, spec string) []string {
	if !strings.HasPrefix(spec, "./") && !strings.HasPrefix(spec, "../") {
		return nil
	}
	baseDir := path.Dir(curFile)
	target := path.Clean(path.Join(baseDir, spec))
	for _, c := range []string{target, target + ".js", path.Join(target, "index.js")} {
		if universe[c] {
			return []string{c}
		}
	}
	base := path.Base(target)
	var out []string
	for file := range universe {
		fb := strings.TrimSuffix(path.Base(file), ".js")
		if fb == base || fb == strings.TrimSuffix(base, ".js") {
			out = append(out, file)
		}
	}
	return out
}

// unionFind is a plain weighted union-find over file indices.
type unionFind struct{ parent, size []int }

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
		u.size[i] = 1
	}
	return u
}

func (u *unionFind) find(i int) int {
	for u.parent[i] != i {
		u.parent[i] = u.parent[u.parent[i]]
		i = u.parent[i]
	}
	return i
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}

// partitionComponents groups package files into the fragments the
// incremental scanner analyzes independently: connected components of
// the require graph, further merged along every shared-global channel
// the facts expose. Components are returned ordered by their first
// file, files inside a component in package order.
func partitionComponents(rels []string, facts []*fileFacts) [][]int {
	n := len(rels)
	u := newUnionFind(n)
	idx := make(map[string]int, n)
	universe := make(map[string]bool, n)
	for i, r := range rels {
		idx[r] = i
		universe[r] = true
	}

	// Channel 1: resolved require edges.
	for i, f := range facts {
		for _, spec := range f.requires {
			for _, target := range resolveRequire(universe, rels[i], spec) {
				u.union(i, idx[target])
			}
		}
	}

	// Channel 2: shared-name channels. For a plain name, the shared
	// root node exists iff somebody free-reads it; writers (assigners
	// and mutators) then act on it for everyone. For an external
	// module, every requirer shares the node; only mutation couples
	// them.
	type group struct{ readers, writers []int }
	names := map[string]*group{}
	get := func(key string) *group {
		g := names[key]
		if g == nil {
			g = &group{}
			names[key] = g
		}
		return g
	}
	for i, f := range facts {
		for name := range f.freeReads {
			get("g:" + name).readers = append(get("g:"+name).readers, i)
		}
		for name := range f.assigned {
			get("g:" + name).writers = append(get("g:"+name).writers, i)
		}
		for key := range f.readRoots {
			if strings.HasPrefix(key, "m:") {
				get(key).readers = append(get(key).readers, i)
			}
		}
		for key := range f.mutated {
			get(key).writers = append(get(key).writers, i)
		}
	}
	for _, g := range names {
		if len(g.readers) == 0 || len(g.writers) == 0 {
			continue
		}
		first := g.readers[0]
		for _, i := range g.readers[1:] {
			u.union(first, i)
		}
		for _, i := range g.writers {
			u.union(first, i)
		}
	}

	// Deterministic component order: by first member index.
	byRoot := map[int][]int{}
	var order []int
	for i := 0; i < n; i++ {
		r := u.find(i)
		if _, ok := byRoot[r]; !ok {
			order = append(order, r)
		}
		byRoot[r] = append(byRoot[r], i)
	}
	out := make([][]int, 0, len(order))
	for _, r := range order {
		out = append(out, byRoot[r])
	}
	return out
}
