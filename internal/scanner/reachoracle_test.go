package scanner

import (
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/queries"
)

// findingBytes renders a report's finding set in its identity-relevant
// entirety (provenance is diagnostic metadata, deliberately excluded).
func findingBytes(rep *Report) string {
	var sb strings.Builder
	for _, f := range rep.Findings {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// oraclePackages is the full differential-oracle input: one instance
// of every dataset template (all CWEs x all behavioural classes), the
// export-alias corpus, the complete ground-truth corpora, and the
// pathological crash corpus.
func oraclePackages() []*dataset.Package {
	var pkgs []*dataset.Package
	g := dataset.NewGenForTest(3)
	classes := []dataset.Class{
		dataset.ClassPlain, dataset.ClassLoopy, dataset.ClassNoWebContext,
		dataset.ClassUnsupported, dataset.ClassBaselineOnly,
		dataset.ClassSanitized, dataset.ClassBenign,
	}
	for _, cwe := range queries.AllCWEs {
		for _, class := range classes {
			pkgs = append(pkgs, dataset.RenderForTest(g, cwe, class))
		}
	}
	pkgs = append(pkgs, dataset.ExportAlias(3).Packages...)
	vulcan, secbench := dataset.GroundTruth(1)
	pkgs = append(pkgs, vulcan.Packages...)
	pkgs = append(pkgs, secbench.Packages...)
	pkgs = append(pkgs, dataset.Pathological().Packages...)
	return pkgs
}

// TestReachGateDifferentialOracle is the soundness gate for the
// export-graph reachability pre-pass: over every dataset template,
// the full ground-truth corpus, and the pathological crash corpus, on
// all three detection engines, a gated scan must produce a
// byte-identical finding set (and failure classification) to an
// ungated one. Any divergence means the gate lost or invented a
// finding.
func TestReachGateDifferentialOracle(t *testing.T) {
	pkgs := oraclePackages()
	engines := []Engine{EngineQuery, EngineNative, EngineFallback}

	type job struct {
		p      *dataset.Package
		engine Engine
	}
	jobs := make(chan job, len(pkgs))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures []string
	workers := runtime.GOMAXPROCS(0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				gated := scanAliasPkg(j.p, Options{Engine: j.engine})
				ungated := scanAliasPkg(j.p, Options{Engine: j.engine, NoReachGate: true})
				var msg string
				switch {
				case findingBytes(gated) != findingBytes(ungated):
					msg = "finding sets diverge:\n  gated:\n" + findingBytes(gated) +
						"  ungated:\n" + findingBytes(ungated)
				case gated.Failure != ungated.Failure:
					msg = "failure class diverges: " + gated.Failure.String() + " vs " + ungated.Failure.String()
				case gated.SkippedByReach && len(ungated.Findings) > 0:
					msg = "gate skipped detection but ungated scan found findings"
				}
				if msg != "" {
					mu.Lock()
					failures = append(failures, j.p.Name+" ("+string(j.engine)+"): "+msg)
					mu.Unlock()
				}
			}
		}()
	}
	for _, engine := range engines {
		for _, p := range pkgs {
			jobs <- job{p: p, engine: engine}
		}
	}
	close(jobs)
	wg.Wait()
	if len(failures) > 0 {
		max := len(failures)
		if max > 10 {
			max = 10
		}
		t.Fatalf("%d oracle violations, first %d:\n%s",
			len(failures), max, strings.Join(failures[:max], "\n"))
	}
}

// FuzzReachSoundness fuzzes the oracle on arbitrary sources: pruning
// decisions must never change what the scan reports.
func FuzzReachSoundness(f *testing.F) {
	f.Add(gitResetSrc)
	f.Add("var cp = require('child_process');\nfunction hit(c){cp.exec(c);}\n")
	f.Add("var api = module.exports;\napi.go = function(x){ eval(x); };\n")
	f.Add("function dead(x){ eval(x); }\nmodule.exports = function(y){ return y; };\n")
	f.Add("exports = module.exports = { run: function(k){ require('fs').readFile(k); } };\n")
	f.Add("module.exports = require('./lib');\n")
	f.Add("function f(o,k,v){ var s = o[k]; s[k] = v; }\nmodule.exports = f;\n")
	f.Fuzz(func(t *testing.T, src string) {
		gated := ScanSource(src, "fuzz.js", Options{})
		ungated := ScanSource(src, "fuzz.js", Options{NoReachGate: true})
		if findingBytes(gated) != findingBytes(ungated) {
			t.Fatalf("finding sets diverge on %q:\n  gated: %v\n  ungated: %v",
				src, gated.Findings, ungated.Findings)
		}
		if gated.SkippedByReach && len(ungated.Findings) > 0 {
			t.Fatalf("gate skipped detection on %q but ungated scan found %v",
				src, ungated.Findings)
		}
	})
}
