package scanner

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/budget"
	"repro/internal/mdg"
	"repro/internal/queries"
	"repro/internal/store"
)

// Persistent incremental state
//
// This file gives the incremental scanner's three cache families a
// durable form in the content-addressed store (internal/store):
//
//   - KindFragment: one fragEntry — the component's MDG fragment
//     (compact mdg codec) plus the function summaries and export facts
//     rehydration needs — keyed by the componentKey already used for
//     the in-memory map. Content-addressed keys make invalidation
//     unnecessary: a stale key can only be hit again if the exact file
//     contents (and analysis options) that produced it come back, and
//     then it is valid again by construction.
//   - KindDetect: one cached detection result, keyed by componentKey ×
//     engine × fallback bit × sink-config fingerprint. Only clean
//     results (no error, no fallback error, no failure class) are
//     persisted; the rare error-carrying entries recompute on restart,
//     which changes speed, never findings.
//   - KindFrontEnd: per-file dependency facts keyed by the file's
//     front-end content hash (which covers path and source).
//
// Decoders trust nothing. Bytes arrive CRC-clean from the store but
// could still be written by a different build or corrupted at a layer
// the CRC cannot see, so every decode failure is an error the caller
// converts into store.Quarantine + a cold rebuild — the degrade-to-
// cold invariant. FuzzStoreDecode drives all of these decoders over
// corrupted inputs.
//
// Function summaries are persisted without their *core.FuncDef: after
// rehydration, detection consumes only the graph and the summaries'
// location/export fields (the reach gate recomputes the export surface
// from the lowered programs every scan), so Def stays nil on load.

// persistVersion versions the scanner-level record bodies,
// independently of the store's record framing and the mdg fragment
// codec (each layer can evolve alone). Version 2 added the
// cross-package linker side tables (externals, callee/this sets,
// module environments) to fragment entries; version-1 records decode-
// fail into a quarantine + cold rebuild, the standard upgrade path.
const persistVersion = 2

// errPersistCodec wraps every scanner-level decode failure.
var errPersistCodec = errors.New("scanner: persisted entry decode")

// ---------------------------------------------------------------------------
// Fragment entries
// ---------------------------------------------------------------------------

// encodeFragEntry serializes a cacheable fragment entry. Only called
// for clean builds (fe.frag != nil).
func encodeFragEntry(fe *fragEntry) []byte {
	buf := make([]byte, 0, 256)
	buf = append(buf, persistVersion)
	buf = binary.AppendUvarint(buf, uint64(len(fe.rels)))
	for _, rel := range fe.rels {
		buf = appendPString(buf, rel)
	}
	buf = appendBool(buf, fe.hasReal)
	names := make([]string, 0, len(fe.functions))
	for name := range fe.functions {
		names = append(names, name)
	}
	sort.Strings(names)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		fn := fe.functions[name]
		buf = appendPString(buf, name)
		buf = binary.AppendUvarint(buf, uint64(fn.Loc))
		buf = binary.AppendUvarint(buf, uint64(len(fn.Params)))
		for _, p := range fn.Params {
			buf = binary.AppendUvarint(buf, uint64(p))
		}
		buf = binary.AppendUvarint(buf, uint64(fn.ThisLoc))
		buf = binary.AppendUvarint(buf, uint64(fn.RetLoc))
		// The build-time export truth, not the possibly fallback-
		// mutated live bit: rehydrate resets from realExported anyway.
		buf = appendBool(buf, fe.realExported[name])
	}
	// Cross-package linker side tables, each in sorted key order so
	// equal entries encode identically.
	specs := make([]string, 0, len(fe.externals))
	for spec := range fe.externals {
		specs = append(specs, spec)
	}
	sort.Strings(specs)
	buf = binary.AppendUvarint(buf, uint64(len(specs)))
	for _, spec := range specs {
		buf = appendPString(buf, spec)
		buf = binary.AppendUvarint(buf, uint64(fe.externals[spec]))
	}
	buf = appendLocTable(buf, fe.calleeLocs)
	buf = appendLocTable(buf, fe.callThis)
	files := make([]string, 0, len(fe.modEnv))
	for file := range fe.modEnv {
		files = append(files, file)
	}
	sort.Strings(files)
	buf = binary.AppendUvarint(buf, uint64(len(files)))
	for _, file := range files {
		me := fe.modEnv[file]
		buf = appendPString(buf, file)
		buf = binary.AppendUvarint(buf, uint64(me.Module))
		buf = binary.AppendUvarint(buf, uint64(me.Exports))
	}
	return append(buf, mdg.EncodeFragment(fe.frag)...)
}

// appendLocTable encodes a per-call location table in sorted key
// order.
func appendLocTable(buf []byte, m map[mdg.Loc][]mdg.Loc) []byte {
	keys := make([]mdg.Loc, 0, len(m))
	for l := range m {
		keys = append(keys, l)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, l := range keys {
		buf = binary.AppendUvarint(buf, uint64(l))
		vals := m[l]
		buf = binary.AppendUvarint(buf, uint64(len(vals)))
		for _, v := range vals {
			buf = binary.AppendUvarint(buf, uint64(v))
		}
	}
	return buf
}

// decodeFragEntry parses a persisted fragment entry back into the
// in-memory form (Def-less summaries, detect map empty). Every
// summary location is validated against the fragment's node set so a
// corrupt record cannot smuggle dangling references into detection.
func decodeFragEntry(key string, data []byte) (*fragEntry, error) {
	r := &pReader{b: data}
	if v := r.byte(); r.err == nil && v != persistVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", errPersistCodec, v, persistVersion)
	}
	fe := &fragEntry{
		key:          key,
		functions:    make(map[string]*analysis.FuncSummary),
		realExported: make(map[string]bool),
		detect:       make(map[detectKey]*detectResult),
	}
	nr := r.count(1)
	for i := 0; i < nr && r.err == nil; i++ {
		fe.rels = append(fe.rels, r.string())
	}
	fe.hasReal = r.bool()
	nf := r.count(4)
	for i := 0; i < nf && r.err == nil; i++ {
		name := r.string()
		fn := &analysis.FuncSummary{}
		fn.Loc = mdg.Loc(r.uvarint())
		np := r.count(1)
		for j := 0; j < np && r.err == nil; j++ {
			fn.Params = append(fn.Params, mdg.Loc(r.uvarint()))
		}
		fn.ThisLoc = mdg.Loc(r.uvarint())
		fn.RetLoc = mdg.Loc(r.uvarint())
		exported := r.bool()
		if r.err != nil {
			break
		}
		if _, dup := fe.functions[name]; dup {
			return nil, fmt.Errorf("%w: duplicate function %q", errPersistCodec, name)
		}
		fn.Exported = exported
		fe.functions[name] = fn
		fe.realExported[name] = exported
	}
	ne := r.count(2)
	if ne > 0 {
		fe.externals = make(map[string]mdg.Loc, ne)
	}
	for i := 0; i < ne && r.err == nil; i++ {
		spec := r.string()
		l := mdg.Loc(r.uvarint())
		if r.err != nil {
			break
		}
		if _, dup := fe.externals[spec]; dup {
			return nil, fmt.Errorf("%w: duplicate external %q", errPersistCodec, spec)
		}
		fe.externals[spec] = l
	}
	fe.calleeLocs = r.locTable()
	fe.callThis = r.locTable()
	nm := r.count(3)
	if nm > 0 {
		fe.modEnv = make(map[string]analysis.ModuleLocs, nm)
	}
	for i := 0; i < nm && r.err == nil; i++ {
		file := r.string()
		me := analysis.ModuleLocs{Module: mdg.Loc(r.uvarint()), Exports: mdg.Loc(r.uvarint())}
		if r.err != nil {
			break
		}
		if _, dup := fe.modEnv[file]; dup {
			return nil, fmt.Errorf("%w: duplicate module env %q", errPersistCodec, file)
		}
		fe.modEnv[file] = me
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: %w", errPersistCodec, r.err)
	}
	frag, err := mdg.DecodeFragment(data[r.off:])
	if err != nil {
		return nil, fmt.Errorf("%w: %w", errPersistCodec, err)
	}
	fe.frag = frag
	locs := frag.LocSet()
	okLoc := func(l mdg.Loc) bool { return l == mdg.NoLoc || locs[l] }
	for name, fn := range fe.functions {
		if !okLoc(fn.Loc) || !okLoc(fn.ThisLoc) || !okLoc(fn.RetLoc) {
			return nil, fmt.Errorf("%w: function %q references missing node", errPersistCodec, name)
		}
		for _, p := range fn.Params {
			if !okLoc(p) {
				return nil, fmt.Errorf("%w: function %q parameter references missing node", errPersistCodec, name)
			}
		}
	}
	for spec, l := range fe.externals {
		if !okLoc(l) {
			return nil, fmt.Errorf("%w: external %q references missing node", errPersistCodec, spec)
		}
	}
	for _, m := range []map[mdg.Loc][]mdg.Loc{fe.calleeLocs, fe.callThis} {
		for l, vals := range m {
			if !okLoc(l) {
				return nil, fmt.Errorf("%w: call table references missing node", errPersistCodec)
			}
			for _, v := range vals {
				if !okLoc(v) {
					return nil, fmt.Errorf("%w: call table value references missing node", errPersistCodec)
				}
			}
		}
	}
	for file, me := range fe.modEnv {
		if !okLoc(me.Module) || !okLoc(me.Exports) {
			return nil, fmt.Errorf("%w: module env %q references missing node", errPersistCodec, file)
		}
	}
	return fe, nil
}

// ---------------------------------------------------------------------------
// Detection results
// ---------------------------------------------------------------------------

// detectRecord is the persisted (JSON) form of a clean detectResult.
// Findings round-trip exactly: every queries.Finding field is exported
// and JSON-stable, and provenance is recomputed per scan on report
// copies, so cached findings never carry it.
type detectRecord struct {
	V         int               `json:"v"`
	Findings  []queries.Finding `json:"findings,omitempty"`
	Truncated int               `json:"truncated,omitempty"`
	FellBack  bool              `json:"fellBack,omitempty"`
}

// encodeDetectResult serializes dr if it is persistable: only clean
// outcomes go to disk (errors are process-local values that cannot
// round-trip, and they are rare enough that recomputing them is the
// simpler correctness argument).
func encodeDetectResult(dr *detectResult) ([]byte, bool) {
	if dr.err != nil || dr.fallbackErr != nil || dr.failure != budget.ClassNone {
		return nil, false
	}
	body, err := json.Marshal(detectRecord{
		V:         persistVersion,
		Findings:  dr.findings,
		Truncated: dr.truncated,
		FellBack:  dr.fellBack,
	})
	if err != nil {
		return nil, false
	}
	return body, true
}

func decodeDetectResult(data []byte) (*detectResult, error) {
	var rec detectRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%w: %w", errPersistCodec, err)
	}
	if rec.V != persistVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", errPersistCodec, rec.V, persistVersion)
	}
	return &detectResult{
		findings:  rec.Findings,
		truncated: rec.Truncated,
		fellBack:  rec.FellBack,
	}, nil
}

// detectStoreKey derives the store key for one detection result:
// component content × engine × package-wide fallback bit × sink
// configuration. The in-memory detect map keys on the caller's Config
// pointer; the store must key on config *content*, so the config is
// fingerprinted (nil means the canonical default).
func detectStoreKey(ckey string, engine Engine, fallback bool, cfg *queries.Config) (string, bool) {
	fp := "default"
	if cfg != nil {
		b, err := json.Marshal(cfg)
		if err != nil {
			return "", false // unfingerprintable config: skip persistence
		}
		sum := sha256.Sum256(b)
		fp = hex.EncodeToString(sum[:8])
	}
	return fmt.Sprintf("%s|%s|%t|%s", ckey, engine, fallback, fp), true
}

// ---------------------------------------------------------------------------
// Front-end dependency facts
// ---------------------------------------------------------------------------

// encodeFacts serializes one file's dependency facts. Maps are written
// in sorted key order so equal facts encode identically.
func encodeFacts(ff *fileFacts) []byte {
	buf := make([]byte, 0, 128)
	buf = append(buf, persistVersion)
	buf = binary.AppendUvarint(buf, uint64(len(ff.requires)))
	for _, s := range ff.requires {
		buf = appendPString(buf, s)
	}
	for _, m := range []map[string]bool{ff.freeReads, ff.assigned, ff.mutated, ff.readRoots} {
		keys := make([]string, 0, len(m))
		for k := range m {
			if m[k] {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		buf = binary.AppendUvarint(buf, uint64(len(keys)))
		for _, k := range keys {
			buf = appendPString(buf, k)
		}
	}
	return buf
}

func decodeFacts(data []byte) (*fileFacts, error) {
	r := &pReader{b: data}
	if v := r.byte(); r.err == nil && v != persistVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", errPersistCodec, v, persistVersion)
	}
	ff := &fileFacts{
		freeReads: map[string]bool{},
		assigned:  map[string]bool{},
		mutated:   map[string]bool{},
		readRoots: map[string]bool{},
	}
	nr := r.count(1)
	for i := 0; i < nr && r.err == nil; i++ {
		ff.requires = append(ff.requires, r.string())
	}
	for _, m := range []map[string]bool{ff.freeReads, ff.assigned, ff.mutated, ff.readRoots} {
		nk := r.count(1)
		for i := 0; i < nk && r.err == nil; i++ {
			m[r.string()] = true
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: %w", errPersistCodec, r.err)
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", errPersistCodec, len(r.b)-r.off)
	}
	return ff, nil
}

// factsStoreKey is the per-file facts key: the front-end content hash
// (sha256 over rel + NUL + source) in hex.
func factsStoreKey(hash [sha256.Size]byte) string {
	return hex.EncodeToString(hash[:])
}

// ---------------------------------------------------------------------------
// IncrementalState read/write-through
// ---------------------------------------------------------------------------

// AttachStore connects st to a persistent store: subsequent scans read
// cache families through it and write fresh clean entries back. Safe
// to call at any time; nil detaches.
func (st *IncrementalState) AttachStore(s *store.Store) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.store = s
}

// loadFrag reads one fragment entry through the store. Callers hold
// st.mu. A decode failure quarantines the record and reports a miss.
func (st *IncrementalState) loadFrag(key string) (*fragEntry, bool) {
	if st.store == nil {
		return nil, false
	}
	body, ok := st.store.Get(store.KindFragment, key)
	if !ok {
		st.stats.StoreMisses++
		return nil, false
	}
	fe, err := decodeFragEntry(key, body)
	if err != nil {
		st.store.Quarantine(store.KindFragment, key)
		st.stats.StoreQuarantined++
		return nil, false
	}
	st.stats.StoreHits++
	return fe, true
}

// saveFrag writes a clean fragment entry through the store. Write
// failures (ENOSPC, injected faults) are counted and swallowed: the
// entry stays in memory, the disk just missed a speedup.
func (st *IncrementalState) saveFrag(fe *fragEntry) {
	if st.store == nil || fe.frag == nil {
		return
	}
	if err := st.store.Put(store.KindFragment, fe.key, encodeFragEntry(fe)); err != nil {
		st.stats.StoreErrors++
		return
	}
	st.stats.StorePuts++
}

// loadDetect reads one detection result through the store.
func (st *IncrementalState) loadDetect(ckey string, engine Engine, fallback bool, cfg *queries.Config) (*detectResult, bool) {
	if st.store == nil {
		return nil, false
	}
	key, ok := detectStoreKey(ckey, engine, fallback, cfg)
	if !ok {
		return nil, false
	}
	body, ok := st.store.Get(store.KindDetect, key)
	if !ok {
		st.stats.StoreMisses++
		return nil, false
	}
	dr, err := decodeDetectResult(body)
	if err != nil {
		st.store.Quarantine(store.KindDetect, key)
		st.stats.StoreQuarantined++
		return nil, false
	}
	st.stats.StoreHits++
	return dr, true
}

// saveDetect persists a clean detection result.
func (st *IncrementalState) saveDetect(ckey string, engine Engine, fallback bool, cfg *queries.Config, dr *detectResult) {
	if st.store == nil {
		return
	}
	body, ok := encodeDetectResult(dr)
	if !ok {
		return
	}
	key, ok := detectStoreKey(ckey, engine, fallback, cfg)
	if !ok {
		return
	}
	if err := st.store.Put(store.KindDetect, key, body); err != nil {
		st.stats.StoreErrors++
		return
	}
	st.stats.StorePuts++
}

// loadFacts reads one file's dependency facts through the store.
func (st *IncrementalState) loadFacts(hash [sha256.Size]byte) (*fileFacts, bool) {
	if st.store == nil {
		return nil, false
	}
	key := factsStoreKey(hash)
	body, ok := st.store.Get(store.KindFrontEnd, key)
	if !ok {
		st.stats.StoreMisses++
		return nil, false
	}
	ff, err := decodeFacts(body)
	if err != nil {
		st.store.Quarantine(store.KindFrontEnd, key)
		st.stats.StoreQuarantined++
		return nil, false
	}
	st.stats.StoreHits++
	return ff, true
}

// saveFacts persists one file's dependency facts.
func (st *IncrementalState) saveFacts(hash [sha256.Size]byte, ff *fileFacts) {
	if st.store == nil {
		return
	}
	if err := st.store.Put(store.KindFrontEnd, factsStoreKey(hash), encodeFacts(ff)); err != nil {
		st.stats.StoreErrors++
		return
	}
	st.stats.StorePuts++
}

// ---------------------------------------------------------------------------
// Small codec helpers
// ---------------------------------------------------------------------------

func appendPString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// pReader is a bounds-checked sticky-error decoder (same shape as the
// mdg fragment reader): after the first failure every method returns
// zero values and the loop unwinds without plumbing errors per call.
type pReader struct {
	b   []byte
	off int
	err error
}

func (r *pReader) fail(msg string) {
	if r.err == nil {
		r.err = fmt.Errorf("%s at offset %d", msg, r.off)
	}
}

func (r *pReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("truncated")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *pReader) bool() bool { return r.byte() != 0 }

func (r *pReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.off += n
	return v
}

// count reads a declared element count, bounded by what the remaining
// bytes could hold so a corrupt count cannot drive a huge allocation.
func (r *pReader) count(minBytes int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(len(r.b)-r.off)/uint64(minBytes)+1 {
		r.fail(fmt.Sprintf("implausible count %d", v))
		return 0
	}
	return int(v)
}

// locTable decodes a per-call location table written by
// appendLocTable (nil for an empty table).
func (r *pReader) locTable() map[mdg.Loc][]mdg.Loc {
	n := r.count(2)
	if n == 0 || r.err != nil {
		return nil
	}
	m := make(map[mdg.Loc][]mdg.Loc, n)
	for i := 0; i < n && r.err == nil; i++ {
		l := mdg.Loc(r.uvarint())
		nv := r.count(1)
		vals := make([]mdg.Loc, 0, nv)
		for j := 0; j < nv && r.err == nil; j++ {
			vals = append(vals, mdg.Loc(r.uvarint()))
		}
		if r.err != nil {
			break
		}
		if _, dup := m[l]; dup {
			r.fail("duplicate loc-table key")
			break
		}
		m[l] = vals
	}
	return m
}

func (r *pReader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail("string overruns input")
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}
