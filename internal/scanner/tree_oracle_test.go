package scanner

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/dataset"
	"repro/internal/queries"
)

// The tree-equivalence oracle: scanning a dependency tree with
// stitched per-package fragments must produce byte-identical findings
// to scanning the same code flattened into one package (bare requires
// rewritten to relative paths). The flattened scan is the reference —
// it uses only the long-tested single-package pipeline — so any
// divergence is a bug in the resolver, the stitcher, or the
// cross-package linker.

func treeSources(files []dataset.TreeFile) []SourceFile {
	out := make([]SourceFile, len(files))
	for i, f := range files {
		out[i] = SourceFile{Rel: f.Rel, Src: f.Src}
	}
	return out
}

// findingIdentity projects a finding onto the tuple that defines
// differential identity (witness paths and provenance excluded).
func findingIdentity(f queries.Finding) string {
	return fmt.Sprintf("%s|%s|%s|%d|%s", f.CWE, f.SinkName, f.SinkFile, f.SinkLine, f.Source)
}

func identityList(fs []queries.Finding) string {
	ids := make([]string, len(fs))
	for i, f := range fs {
		ids[i] = findingIdentity(f)
	}
	return strings.Join(ids, "\n")
}

var treeOracleEngines = []Engine{EngineQuery, EngineNative, EngineFallback}

func TestTreeEquivalenceOracle(t *testing.T) {
	for _, tc := range dataset.TreeCases() {
		for _, eng := range treeOracleEngines {
			tc, eng := tc, eng
			t.Run(tc.Name+"/"+string(eng), func(t *testing.T) {
				t.Parallel()
				opts := Options{Engine: eng, Timeout: 30 * time.Second}
				topts := opts
				topts.Tree = true
				treeRep := ScanFiles(treeSources(tc.Files), tc.Name, topts)
				flatRep := ScanFiles(treeSources(dataset.FlattenTree(tc)), tc.Name+"-flat", opts)

				if treeRep.Err != nil || treeRep.Failure != budget.ClassNone {
					t.Fatalf("tree scan failed: class=%q err=%v", treeRep.Failure, treeRep.Err)
				}
				if flatRep.Err != nil || flatRep.Failure != budget.ClassNone {
					t.Fatalf("flat scan failed: class=%q err=%v", flatRep.Failure, flatRep.Err)
				}
				got, want := identityList(treeRep.Findings), identityList(flatRep.Findings)
				if got != want {
					t.Fatalf("tree findings diverge from flattened reference\ntree:\n%s\nflat:\n%s", got, want)
				}

				if treeRep.TreePackages != tc.Packages {
					t.Errorf("TreePackages = %d, want %d", treeRep.TreePackages, tc.Packages)
				}
				if treeRep.TreeDepth != tc.Depth {
					t.Errorf("TreeDepth = %d, want %d", treeRep.TreeDepth, tc.Depth)
				}

				if !tc.Vulnerable {
					if len(treeRep.Findings) != 0 {
						t.Fatalf("benign tree produced findings:\n%s", got)
					}
					return
				}

				// Ground truth: the vulnerable variant yields exactly the
				// annotated sinks, at their file-qualified lines.
				type sinkKey struct {
					cwe  queries.CWE
					file string
					line int
				}
				wantSinks := map[sinkKey]bool{}
				for _, a := range tc.Annotated {
					wantSinks[sinkKey{a.CWE, a.File, a.Line}] = true
				}
				gotSinks := map[sinkKey]bool{}
				for _, f := range treeRep.Findings {
					gotSinks[sinkKey{f.CWE, f.SinkFile, f.SinkLine}] = true
				}
				if len(gotSinks) != len(wantSinks) {
					t.Fatalf("sinks %v, want %v", gotSinks, wantSinks)
				}
				for k := range wantSinks {
					if !gotSinks[k] {
						t.Errorf("annotated sink %v not found (got %v)", k, gotSinks)
					}
				}

				// Every tree finding carries dependency-hop provenance.
				for _, f := range treeRep.Findings {
					if len(f.Provenance.DepPath) == 0 {
						t.Errorf("finding %s has no DepPath", findingIdentity(f))
					}
					for _, hop := range f.Provenance.DepPath {
						if hop == "(unresolved)" {
							t.Errorf("finding %s has unresolved DepPath", findingIdentity(f))
						}
					}
				}
			})
		}
	}
}

// TestTreeProvenanceShadowed pins the provenance detail that matters
// most: in the shadowed-nested fixture the finding's dependency path
// must name the *nested* filter copy (innermost wins), with its
// version and node_modules directory, and the call-path hops must be
// package-qualified.
func TestTreeProvenanceShadowed(t *testing.T) {
	var tc dataset.TreeCase
	for _, c := range dataset.TreeCases() {
		if c.Name == "tree-shadowed" {
			tc = c
		}
	}
	if tc.Name == "" {
		t.Fatal("tree-shadowed fixture missing")
	}
	rep := ScanFiles(treeSources(tc.Files), tc.Name, Options{Tree: true, Timeout: 30 * time.Second})
	if rep.Err != nil || len(rep.Findings) == 0 {
		t.Fatalf("scan: err=%v findings=%d", rep.Err, len(rep.Findings))
	}
	found := false
	for _, f := range rep.Findings {
		if f.SinkFile != "node_modules/helper/node_modules/filter/index.js" {
			continue
		}
		found = true
		dep := strings.Join(f.Provenance.DepPath, " -> ")
		if !strings.Contains(dep, "filter@1.0.9 (node_modules/helper/node_modules/filter)") {
			t.Errorf("DepPath %q does not name the nested shadowed copy", dep)
		}
		if strings.Contains(dep, "filter@2.1.0") {
			t.Errorf("DepPath %q names the top-level (shadowed-out) copy", dep)
		}
		for _, h := range f.Provenance.Hops {
			if strings.Count(h, ":") < 2 {
				t.Errorf("hop %q is not pkg:file:name qualified", h)
			}
		}
	}
	if !found {
		t.Fatalf("no finding in the nested shadowed copy; findings:\n%s", identityList(rep.Findings))
	}
}

// TestTreeScanWorkers runs every tree fixture across 4 workers sharing
// one StatePool (the graphjsd shape), twice per case so warm re-scans
// race against cold builds elsewhere; results must match the serial
// reference exactly. Run under -race this doubles as the stitcher's
// data-race gate.
func TestTreeScanWorkers(t *testing.T) {
	cases := dataset.TreeCases()
	serial := make(map[string]string, len(cases))
	for _, tc := range cases {
		rep := ScanFiles(treeSources(tc.Files), tc.Name, Options{Tree: true, Timeout: 30 * time.Second})
		if rep.Err != nil {
			t.Fatalf("%s: serial scan: %v", tc.Name, rep.Err)
		}
		serial[tc.Name] = identityList(rep.Findings)
	}

	pool := NewStatePool()
	jobs := make(chan dataset.TreeCase)
	var wg sync.WaitGroup
	errc := make(chan error, len(cases)*2)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tc := range jobs {
				for round := 0; round < 2; round++ {
					opts := Options{
						Tree:        true,
						Timeout:     30 * time.Second,
						Incremental: pool.Get(tc.Name),
					}
					rep := ScanFiles(treeSources(tc.Files), tc.Name, opts)
					if rep.Err != nil {
						errc <- fmt.Errorf("%s: %v", tc.Name, rep.Err)
						continue
					}
					if got := identityList(rep.Findings); got != serial[tc.Name] {
						errc <- fmt.Errorf("%s round %d: findings diverge\ngot:\n%s\nwant:\n%s",
							tc.Name, round, got, serial[tc.Name])
					}
				}
			}
		}()
	}
	for _, tc := range cases {
		jobs <- tc
	}
	close(jobs)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestTreeWarmRescan: after editing one dependency, a warm re-scan
// rebuilds only that package's fragment and updates the findings.
func TestTreeWarmRescan(t *testing.T) {
	var tc dataset.TreeCase
	for _, c := range dataset.TreeCases() {
		if c.Name == "tree-diamond" {
			tc = c
		}
	}
	st := NewIncrementalState()
	opts := Options{Tree: true, Timeout: 30 * time.Second, Incremental: st}

	cold := ScanFiles(treeSources(tc.Files), tc.Name, opts)
	if cold.Err != nil || len(cold.Findings) == 0 {
		t.Fatalf("cold: err=%v findings=%d", cold.Err, len(cold.Findings))
	}
	if cold.IncrStats == nil || cold.IncrStats.FragmentMisses != tc.Packages {
		t.Fatalf("cold stats %+v, want %d fragment misses", cold.IncrStats, tc.Packages)
	}

	// Identical warm re-scan: all fragments reused.
	warm := ScanFiles(treeSources(tc.Files), tc.Name, opts)
	if warm.IncrStats.FragmentMisses != tc.Packages {
		t.Fatalf("unchanged re-scan rebuilt fragments: %+v", warm.IncrStats)
	}
	if identityList(warm.Findings) != identityList(cold.Findings) {
		t.Fatalf("warm findings diverge from cold")
	}

	// Edit one dependency (defuse core's sink): exactly one fragment
	// rebuilds and the finding disappears.
	edited := make([]dataset.TreeFile, len(tc.Files))
	copy(edited, tc.Files)
	for i, f := range edited {
		if f.Rel == "node_modules/core/index.js" {
			edited[i].Src = strings.ReplaceAll(f.Src, "eval('fn(' + t + ')')", "eval('fn()')")
		}
	}
	before := warm.IncrStats.FragmentMisses
	after := ScanFiles(treeSources(edited), tc.Name, opts)
	if after.Err != nil {
		t.Fatalf("edited scan: %v", after.Err)
	}
	if rebuilt := after.IncrStats.FragmentMisses - before; rebuilt != 1 {
		t.Fatalf("one-dep edit rebuilt %d fragments, want 1", rebuilt)
	}
	if len(after.Findings) != 0 {
		t.Fatalf("defused dependency still yields findings:\n%s", identityList(after.Findings))
	}
}

// TestTreeResolveFailure: a declared-but-missing dependency is a
// classified, deterministic failure, not a silent partial scan.
func TestTreeResolveFailure(t *testing.T) {
	files := []SourceFile{
		{Rel: "package.json", Src: `{"name":"broken","version":"1.0.0","dependencies":{"gone":"^1.0.0"}}`},
		{Rel: "index.js", Src: "var g = require('gone');\nmodule.exports = function (x) { g.run(x); };\n"},
	}
	rep := ScanFiles(files, "broken", Options{Tree: true})
	if rep.Failure != budget.ClassResolve {
		t.Fatalf("Failure = %q, want %q (err %v)", rep.Failure, budget.ClassResolve, rep.Err)
	}
	if rep.Err == nil || !strings.Contains(rep.Err.Error(), "gone") {
		t.Fatalf("error %v does not name the missing dependency", rep.Err)
	}
}

// FuzzCrossStitch mutates a dependency's source and the root's require
// specifier in the direct-dependency fixture: whatever the inputs, a
// tree scan must never panic, must end in a known failure class, and
// every finding of a clean scan must carry dependency provenance.
func FuzzCrossStitch(f *testing.F) {
	f.Add("const { exec } = require('child_process');\nexports.run = function (c) { exec(c); };\n", "dep")
	f.Add("module.exports = { run: function (x) { return require('dep'); } };\n", "dep/extra")
	f.Add("", "@org/dep")
	f.Add("exports.run = 1;\n", "../escape")
	f.Add("function f(a) { return f(a); }\nmodule.exports = f;\n", "nope")
	f.Fuzz(func(t *testing.T, depSrc, spec string) {
		if len(depSrc) > 4096 || len(spec) > 64 || strings.ContainsAny(spec, "'\\\n") {
			t.Skip()
		}
		files := []SourceFile{
			{Rel: "index.js", Src: "var d = require('" + spec + "');\nfunction go(input) { d.run(input); }\nmodule.exports = go;\n"},
			{Rel: "node_modules/dep/index.js", Src: depSrc},
			{Rel: "node_modules/dep/package.json", Src: `{"name":"dep","version":"1.0.0"}`},
			{Rel: "package.json", Src: `{"name":"fuzz-root","version":"1.0.0"}`},
		}
		rep := ScanFiles(files, "fuzz-tree", Options{
			Tree:     true,
			Timeout:  5 * time.Second,
			MaxSteps: 200000,
		})
		known := false
		for _, c := range append([]budget.Class{budget.ClassNone}, budget.Classes...) {
			if rep.Failure == c {
				known = true
			}
		}
		if !known {
			t.Fatalf("unknown failure class %q", rep.Failure)
		}
		if rep.Failure == budget.ClassNone && rep.Err == nil {
			for _, fd := range rep.Findings {
				if len(fd.Provenance.DepPath) == 0 {
					t.Fatalf("finding %s has no DepPath", findingIdentity(fd))
				}
			}
		}
	})
}
