package scanner

import (
	"crypto/sha256"
	"sync"

	"repro/internal/budget"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/js/ast"
	"repro/internal/js/normalize"
	"repro/internal/js/parser"
)

// Cache memoizes the per-file front end (parse, AST metrics, Core
// lowering, CFG construction) keyed by content hash. Re-scanning a
// package after editing one file re-runs the front end only for that
// file — the compositionality advantage of CPG-based approaches the
// paper highlights (§2: "code changes only require partial
// reconstructions of the CPG and rerunning pertinent queries").
//
// The MDG itself is rebuilt on every scan: it is a whole-package
// fixed point, and its construction is the cheap phase (Table 6).
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry

	hits, misses int
}

type cacheEntry struct {
	hash [sha256.Size]byte

	prog      *core.Program
	loc       int
	astNodes  int
	cfgNodes  int
	cfgEdges  int
	coreStmts int
}

// NewCache returns an empty front-end cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*cacheEntry)}
}

// Stats reports cache hits and misses so far.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// EstimateBytes approximates the memory retained by the cached
// front-end entries (a sizing heuristic for pool limits: a flat
// per-entry charge plus a per-lowered-statement rate).
func (c *Cache) EstimateBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b int64
	for _, e := range c.entries {
		b += 1024 + int64(e.coreStmts)*96
	}
	return b
}

// EvictExcept removes every entry whose path is not in keep, returning
// the number evicted. Package scans call it on completion so files
// deleted from the package cannot leave stale programs behind (the
// stale-cache hazard: an entry keyed by a removed rel would otherwise
// live forever and, worse, be served again if a file with the same
// path and content reappeared after incompatible sibling changes).
func (c *Cache) EvictExcept(keep map[string]bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	evicted := 0
	for rel := range c.entries {
		if !keep[rel] {
			delete(c.entries, rel)
			evicted++
		}
	}
	return evicted
}

// frontEnd parses and lowers one file, consulting the cache. rel is the
// module-relative name used for require resolution. The scan budget b
// is charged for parser and normalizer work; an entry built while the
// budget was tripping may be truncated, so it is returned but never
// stored.
func (c *Cache) frontEnd(rel, src string, b *budget.Budget) (*cacheEntry, error) {
	h := sha256.Sum256([]byte(rel + "\x00" + src))
	c.mu.Lock()
	if e, ok := c.entries[rel]; ok && e.hash == h {
		c.hits++
		c.mu.Unlock()
		return e, nil
	}
	c.misses++
	c.mu.Unlock()

	prog, err := parser.ParseBudget(src, b)
	if err != nil {
		return nil, err
	}
	nprog := normalize.NormalizeBudget(prog, rel, b)
	cn, ce := cfg.TotalSize(cfg.BuildAll(nprog))
	e := &cacheEntry{
		hash:      h,
		prog:      nprog,
		loc:       countLines(src),
		astNodes:  ast.Count(prog),
		cfgNodes:  cn,
		cfgEdges:  ce,
		coreStmts: core.CountStmts(nprog.Body),
	}
	if b.Err() != nil {
		return e, nil
	}
	c.mu.Lock()
	c.entries[rel] = e
	c.mu.Unlock()
	return e, nil
}

// noCacheFrontEnd is the uncached path.
func noCacheFrontEnd(rel, src string, b *budget.Budget) (*cacheEntry, error) {
	tmp := NewCache()
	return tmp.frontEnd(rel, src, b)
}

func countLines(src string) int {
	n := 1
	for i := 0; i < len(src); i++ {
		if src[i] == '\n' {
			n++
		}
	}
	return n
}
