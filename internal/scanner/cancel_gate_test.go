package scanner

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestCancelDuringReachGateClassifiesCanceled pins the one scan path
// where a mid-scan cancellation used to vanish: a cancel observed
// inside the reach gate of a package the gate then decides to skip.
// The gate degrades budget trips to the keep-everything fallback, so
// without a re-check the skip early-return reported a clean "ok"
// completion — which the daemon would count as a success and a sweep
// journal would record as terminal — for a scan whose client was gone.
func TestCancelDuringReachGateClassifiesCanceled(t *testing.T) {
	// A long aliased-object chain with no sinks: cheap to parse, clean
	// (so the gate skips), and expensive enough in the export fixpoint
	// that a cancellation landing mid-gate is near-certain.
	var sb strings.Builder
	sb.WriteString("module.exports = function(v){ var o = {}; ")
	for i := 0; i < 3000; i++ {
		fmt.Fprintf(&sb, "var t%d = {}; t%d.a = v; t%d.b = o; o.x = t%d; o = t%d; ", i, i, i, i, i)
	}
	sb.WriteString(" return o; };")
	files := []SourceFile{{Rel: "index.js", Src: sb.String()}}

	const cancelAfter = 500 * time.Millisecond
	for _, warm := range []bool{false, true} {
		t.Run(fmt.Sprintf("incremental=%v", warm), func(t *testing.T) {
			opts := Options{}
			if warm {
				opts.Incremental = NewStatePool().Get("ghost")
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go func() { time.Sleep(cancelAfter); cancel() }()
			opts.Context = ctx
			t0 := time.Now()
			rep := ScanFiles(files, "ghost", opts)
			elapsed := time.Since(t0)
			if rep.Failure == "ok" && elapsed < cancelAfter {
				// The whole scan legitimately beat the cancellation; the
				// race this test needs did not happen on this machine.
				t.Skipf("scan completed in %v, before the %v cancel", elapsed, cancelAfter)
			}
			if got := rep.Failure.String(); got != "canceled" {
				t.Fatalf("mid-gate cancel classified %q (after %v), want canceled", got, elapsed)
			}
			if !rep.Incomplete {
				t.Error("canceled scan not marked incomplete")
			}
			if rep.SkippedByReach {
				t.Error("canceled scan still claims a reach-gate skip")
			}
		})
	}
}
