package scanner

import (
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/queries"
)

// differentialClasses is every behavioural template class the dataset
// generator can render, including the sanitized and benign negatives.
var differentialClasses = []dataset.Class{
	dataset.ClassPlain,
	dataset.ClassLoopy,
	dataset.ClassUnsupported,
	dataset.ClassBaselineOnly,
	dataset.ClassBenign,
	dataset.ClassSanitized,
	dataset.ClassBaselineFPOnly,
}

// TestDifferentialEnginesOnTemplates runs the query and native
// backends over every dataset template (all four CWEs crossed with
// every class) and requires identical finding sets. The reach gate is
// disabled so the engines are exercised even on packages the gate
// would skip.
func TestDifferentialEnginesOnTemplates(t *testing.T) {
	g := dataset.NewGenForTest(1)
	for _, cwe := range queries.AllCWEs {
		for _, class := range differentialClasses {
			for variant := 0; variant < 3; variant++ {
				p := dataset.RenderForTest(g, cwe, class)
				rep := ScanSource(p.Source, p.Name, Options{
					Engine:      EngineDifferential,
					NoReachGate: true,
				})
				if rep.Err != nil {
					t.Errorf("%s (cwe %s, class %s): %v", p.Name, cwe, class, rep.Err)
				}
			}
		}
	}
}

// TestDifferentialEnginesGenerative is the testing/quick variant:
// random (seed, cwe, class) triples must never produce a finding-set
// mismatch.
func TestDifferentialEnginesGenerative(t *testing.T) {
	property := func(seed int64, cweIdx, classIdx uint8) bool {
		cwe := queries.AllCWEs[int(cweIdx)%len(queries.AllCWEs)]
		class := differentialClasses[int(classIdx)%len(differentialClasses)]
		g := dataset.NewGenForTest(seed)
		p := dataset.RenderForTest(g, cwe, class)
		rep := ScanSource(p.Source, p.Name, Options{
			Engine:      EngineDifferential,
			NoReachGate: true,
		})
		if rep.Err != nil {
			t.Logf("seed %d, cwe %s, class %s: %v", seed, cwe, class, rep.Err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialEnginesGroundTruth sweeps a slice of the ground-
// truth corpus through differential mode with the reach gate enabled,
// the configuration the evaluation actually runs.
func TestDifferentialEnginesGroundTruth(t *testing.T) {
	vul, sec := dataset.GroundTruth(42)
	pkgs := append(append([]*dataset.Package{}, vul.Packages...), sec.Packages...)
	if testing.Short() {
		pkgs = pkgs[:40]
	}
	for _, p := range pkgs {
		rep := ScanSource(p.Source, p.Name, Options{Engine: EngineDifferential})
		if rep.Err != nil {
			t.Errorf("%s: %v", p.Name, rep.Err)
		}
	}
}

// TestEngineReportedFindingsAgree pins the native backend's findings
// to the query backend's on a known-vulnerable program, including the
// reported metadata.
func TestEngineReportedFindingsAgree(t *testing.T) {
	src := `
const { exec } = require('child_process');
function git_reset(config, op, branch_name, url) {
	var options = config[op];
	options[branch_name] = url;
	options.cmd = 'git reset HEAD~';
	exec(options.cmd + options.commit);
}
module.exports = git_reset;
`
	q := ScanSource(src, "gitreset.js", Options{Engine: EngineQuery})
	n := ScanSource(src, "gitreset.js", Options{Engine: EngineNative})
	if q.Err != nil || n.Err != nil {
		t.Fatalf("errors: query=%v native=%v", q.Err, n.Err)
	}
	if len(q.Findings) == 0 {
		t.Fatal("query engine found nothing")
	}
	if err := DiffFindings(q.Findings, n.Findings); err != nil {
		t.Fatal(err)
	}
	for i := range n.Findings {
		if len(n.Findings[i].Path) == 0 {
			t.Errorf("native finding %d has no witness path: %+v", i, n.Findings[i])
		}
	}
	if n.NativeTime == 0 || q.QueryEngineTime == 0 {
		t.Errorf("per-engine timings not recorded: native=%v query=%v", n.NativeTime, q.QueryEngineTime)
	}
}

func TestParseEngine(t *testing.T) {
	for _, s := range []string{"", "query", "native", "differential"} {
		if _, err := ParseEngine(s); err != nil {
			t.Errorf("ParseEngine(%q): %v", s, err)
		}
	}
	if _, err := ParseEngine("bogus"); err == nil {
		t.Error("ParseEngine must reject unknown engines")
	}
	rep := ScanSource("module.exports = 1;", "x.js", Options{Engine: "bogus"})
	if rep.Err == nil {
		t.Error("scan with unknown engine must fail")
	}
}
