package scanner

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/mdg"
	"repro/internal/queries"
	"repro/internal/store"
)

func openStoreT(t *testing.T, dir string, opts store.Options) *store.Store {
	t.Helper()
	s, err := store.Open(dir, opts)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

var persistFiles = []SourceFile{
	{Rel: "a.js", Src: "function fa(x) { return x; }\nmodule.exports = fa;\n"},
	{Rel: "index.js", Src: gitResetSrc},
}

// A second process (fresh IncrementalState, same store directory) must
// warm-start: no fragment rebuilds, no detection re-runs, findings
// identical to cold.
func TestStoreWarmRestartMatchesCold(t *testing.T) {
	dir := t.TempDir()
	cold := ScanFiles(persistFiles, "pkg", Options{})

	s1 := openStoreT(t, dir, store.Options{})
	st1 := NewIncrementalState()
	st1.AttachStore(s1)
	rep1 := ScanFiles(persistFiles, "pkg", Options{Incremental: st1})
	sameFindings(t, cold, rep1)
	if rep1.IncrStats.StorePuts == 0 {
		t.Fatalf("first scan persisted nothing: %+v", rep1.IncrStats)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a brand-new state over a reopened store.
	s2 := openStoreT(t, dir, store.Options{})
	st2 := NewIncrementalState()
	st2.AttachStore(s2)
	rep2 := ScanFiles(persistFiles, "pkg", Options{Incremental: st2})
	sameFindings(t, cold, rep2)
	stats := rep2.IncrStats
	if stats.FragmentMisses != 0 {
		t.Fatalf("warm restart rebuilt fragments: %+v", stats)
	}
	if stats.FragmentHits == 0 || stats.StoreHits == 0 {
		t.Fatalf("warm restart did not use the store: %+v", stats)
	}
	if stats.DetectMisses != 0 {
		t.Fatalf("warm restart re-ran detection: %+v", stats)
	}
}

// Read-only replicas sharing the writer's directory serve the same
// warm state without taking the lock.
func TestStoreReadOnlyReplicaWarmStarts(t *testing.T) {
	dir := t.TempDir()
	w := openStoreT(t, dir, store.Options{})
	stw := NewIncrementalState()
	stw.AttachStore(w)
	rep := ScanFiles(persistFiles, "pkg", Options{Incremental: stw})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}

	ro := openStoreT(t, dir, store.Options{ReadOnly: true})
	str := NewIncrementalState()
	str.AttachStore(ro)
	rrep := ScanFiles(persistFiles, "pkg", Options{Incremental: str})
	sameFindings(t, rep, rrep)
	stats := rrep.IncrStats
	if stats.FragmentMisses != 0 || stats.StoreHits == 0 {
		t.Fatalf("replica did not warm-start: %+v", stats)
	}
	// The replica cannot write back, and that must be invisible:
	// counters record the attempts as errors, findings are unaffected.
	if stats.StorePuts != 0 {
		t.Fatalf("read-only replica persisted entries: %+v", stats)
	}
}

// Corrupting the store arbitrarily must never change findings — scans
// quarantine what fails to decode and rebuild cold. Every 7th byte of
// the log body is flipped, clobbering essentially every record.
func TestStoreCorruptionDegradesToCold(t *testing.T) {
	dir := t.TempDir()
	cold := ScanFiles(persistFiles, "pkg", Options{})

	s1 := openStoreT(t, dir, store.Options{})
	st1 := NewIncrementalState()
	st1.AttachStore(s1)
	ScanFiles(persistFiles, "pkg", Options{Incremental: st1})
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "store.dat")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 8; i < len(data); i += 7 {
		data[i] ^= 0x55
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openStoreT(t, dir, store.Options{})
	st2 := NewIncrementalState()
	st2.AttachStore(s2)
	rep := ScanFiles(persistFiles, "pkg", Options{Incremental: st2})
	sameFindings(t, cold, rep)
	if rep.IncrStats.FragmentMisses == 0 {
		t.Fatalf("corrupted store should have forced cold rebuilds: %+v", rep.IncrStats)
	}
}

// A record whose CRC holds but whose scanner-level encoding is garbage
// (the layer a store CRC cannot see) must be quarantined by the decode
// path, with findings again identical to cold.
func TestStoreUndecodableEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	cold := ScanSource(gitResetSrc, "git_reset.js", Options{})

	s1 := openStoreT(t, dir, store.Options{})
	st1 := NewIncrementalState()
	st1.AttachStore(s1)
	ScanSource(gitResetSrc, "git_reset.js", Options{Incremental: st1})

	// Overwrite every fragment record with CRC-valid garbage bytes.
	// The store serves them happily; decodeFragEntry must not.
	recs, _ := store.DecodeRecords(readStoreLog(t, dir))
	n := 0
	for _, r := range recs {
		if r.Kind == store.KindFragment {
			if err := s1.Put(store.KindFragment, r.Key, []byte("\xff\xfe garbage")); err != nil {
				t.Fatal(err)
			}
			n++
		}
	}
	if n == 0 {
		t.Fatal("no fragment records to clobber")
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStoreT(t, dir, store.Options{})
	st2 := NewIncrementalState()
	st2.AttachStore(s2)
	rep := ScanSource(gitResetSrc, "git_reset.js", Options{Incremental: st2})
	sameFindings(t, cold, rep)
	if rep.IncrStats.StoreQuarantined == 0 {
		t.Fatalf("undecodable entries were not quarantined: %+v", rep.IncrStats)
	}
	if s2.Stats().Quarantined == 0 {
		t.Fatalf("store-level quarantine count missing: %+v", s2.Stats())
	}
}

func readStoreLog(t *testing.T, dir string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "store.dat"))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestStatePoolLRUEviction(t *testing.T) {
	pool := NewStatePool()
	pool.SetLimits(2, 0)
	a := pool.Get("a")
	pool.Get("b")
	pool.Get("c") // evicts a (LRU)
	if pool.Len() != 2 {
		t.Fatalf("Len = %d, want 2", pool.Len())
	}
	if ev, _ := pool.Evictions(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	if pool.Get("a") == a {
		t.Fatal("evicted state must be recreated, not resurrected")
	}
	// Recency updates: touching b keeps it alive over c... after the
	// re-creation of a above, the pool holds {c, a}; touching c then
	// adding d must evict a.
	pool.Get("c")
	pool.Get("d")
	if ev, _ := pool.Evictions(); ev != 3 {
		// a's re-creation evicted b (2), d evicted a (3)
		t.Fatalf("evictions = %d, want 3", ev)
	}
}

func TestStatePoolByteCapEvicts(t *testing.T) {
	pool := NewStatePool()
	pool.SetLimits(0, 1) // absurdly small: every populated state exceeds it
	st := pool.Get("pkg")
	ScanSource(gitResetSrc, "git_reset.js", Options{Incremental: st})
	if st.EstimateBytes() == 0 {
		t.Fatal("populated state estimates zero bytes")
	}
	pool.Get("other") // enforcement point: pkg exceeds the byte cap
	if _, bytes := pool.Evictions(); bytes == 0 {
		t.Fatal("byte-cap eviction not counted")
	}
	if pool.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (only the kept state)", pool.Len())
	}
}

func TestStatePoolAttachStoreReachesExistingStates(t *testing.T) {
	dir := t.TempDir()
	s := openStoreT(t, dir, store.Options{})
	pool := NewStatePool()
	st := pool.Get("pkg")
	pool.AttachStore(s)
	ScanSource(gitResetSrc, "git_reset.js", Options{Incremental: st})
	if s.Len() == 0 {
		t.Fatal("scan through pre-attach state did not write through")
	}
	if err := pool.Save(); err != nil {
		t.Fatal(err)
	}
}

func TestDetectResultRoundTrip(t *testing.T) {
	dr := &detectResult{
		findings: []queries.Finding{{
			CWE: queries.CWECommandInjection, SinkName: "exec", SinkLine: 4,
			SinkFile: "a.js", Source: "x",
		}},
		truncated: 2,
		fellBack:  true,
	}
	body, ok := encodeDetectResult(dr)
	if !ok {
		t.Fatal("clean result must encode")
	}
	got, err := decodeDetectResult(body)
	if err != nil {
		t.Fatal(err)
	}
	if err := DiffFindings(dr.findings, got.findings); err != nil {
		t.Fatal(err)
	}
	if got.truncated != 2 || !got.fellBack || got.err != nil {
		t.Fatalf("round trip: %+v", got)
	}
	// Error-carrying results never go to disk.
	if _, ok := encodeDetectResult(&detectResult{err: os.ErrInvalid}); ok {
		t.Fatal("error-carrying result must not encode")
	}
}

func TestFactsRoundTrip(t *testing.T) {
	ff := &fileFacts{
		requires:  []string{"./b", "child_process"},
		freeReads: map[string]bool{"shared": true},
		assigned:  map[string]bool{"shared": true, "x": true},
		mutated:   map[string]bool{"g:shared": true},
		readRoots: map[string]bool{"g:shared": true, "m:./b": true},
	}
	got, err := decodeFacts(encodeFacts(ff))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.requires) != 2 || got.requires[0] != "./b" {
		t.Fatalf("requires: %+v", got.requires)
	}
	for _, pair := range []struct{ a, b map[string]bool }{
		{ff.freeReads, got.freeReads}, {ff.assigned, got.assigned},
		{ff.mutated, got.mutated}, {ff.readRoots, got.readRoots},
	} {
		if len(pair.a) != len(pair.b) {
			t.Fatalf("map diverged: %+v vs %+v", pair.a, pair.b)
		}
		for k := range pair.a {
			if !pair.b[k] {
				t.Fatalf("missing key %q", k)
			}
		}
	}
}

// FuzzStoreDecode drives every persistence decoder — store record
// framing, the mdg fragment codec, and the scanner-level entry
// decoders — over corrupted bytes. The invariant is the quarantine
// contract: corrupt input returns an error, never panics, never an
// inconsistent structure.
func FuzzStoreDecode(f *testing.F) {
	// Seeds: valid encodings of each family, so mutation explores the
	// near-valid space where parsers break.
	g := mdg.New()
	l1 := g.Alloc("o", 1, 0, "", mdg.KindObject, "o", 1)
	l2 := g.Alloc("p", 2, 0, "", mdg.KindParam, "x", 2)
	g.AddDep(l2, l1)
	frag := mdg.SnapshotFragment(g)
	fe := &fragEntry{
		key:          "seed",
		rels:         []string{"a.js"},
		frag:         frag,
		functions:    map[string]*analysis.FuncSummary{},
		realExported: map[string]bool{},
		detect:       map[detectKey]*detectResult{},
	}
	f.Add(encodeFragEntry(fe))
	f.Add(mdg.EncodeFragment(frag))
	f.Add(encodeFacts(&fileFacts{
		requires:  []string{"./b"},
		freeReads: map[string]bool{"a": true},
		assigned:  map[string]bool{},
		mutated:   map[string]bool{},
		readRoots: map[string]bool{},
	}))
	if body, ok := encodeDetectResult(&detectResult{findings: []queries.Finding{{CWE: queries.CWECommandInjection}}}); ok {
		f.Add(body)
	}
	f.Add([]byte("MDGS\x01"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if fr, err := mdg.DecodeFragment(data); err == nil {
			_, _ = mdg.Stitch(fr) // an accepted fragment must be stitchable
		}
		if fe, err := decodeFragEntry("k", data); err == nil {
			_ = rehydrate(fe, true) // and rehydratable without panicking
		}
		_, _ = decodeFacts(data)
		_, _ = decodeDetectResult(data)
		recs, diag := store.DecodeRecords(data)
		if diag.Tail > int64(len(data)) {
			t.Fatalf("tail %d beyond input %d", diag.Tail, len(data))
		}
		for _, r := range recs {
			_, _, _ = r.Kind, r.Key, r.Body
		}
	})
}
