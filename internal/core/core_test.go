package core

import (
	"strings"
	"testing"
)

func TestExprString(t *testing.T) {
	cases := map[Expr]string{
		Var{Name: "x"}:                              "x",
		Lit{Kind: LitString, Value: "hi"}:           `"hi"`,
		Lit{Kind: LitNumber, Value: "42"}:           "42",
		Lit{Kind: LitBool, Value: "true"}:           "true",
		Lit{Kind: LitUndefined, Value: "undefined"}: "undefined",
	}
	for e, want := range cases {
		if got := e.String(); got != want {
			t.Errorf("%#v.String() = %q, want %q", e, got, want)
		}
	}
}

func TestStmtStrings(t *testing.T) {
	stmts := []struct {
		s    Stmt
		want string
	}{
		{&Assign{X: "x", E: Var{Name: "y"}}, "x := y"},
		{&BinOp{Meta: Meta{Idx: 3}, X: "t", Op: "+", L: Var{Name: "a"}, R: Var{Name: "b"}}, "t :=3 a + b"},
		{&UnOp{Meta: Meta{Idx: 4}, X: "t", Op: "!", E: Var{Name: "a"}}, "t :=4 !a"},
		{&Lookup{Meta: Meta{Idx: 5}, X: "v", Obj: Var{Name: "o"}, Prop: "p"}, "v :=5 o.p"},
		{&DynLookup{Meta: Meta{Idx: 6}, X: "v", Obj: Var{Name: "o"}, Prop: Var{Name: "k"}}, "v :=6 o[k]"},
		{&Update{Meta: Meta{Idx: 7}, Obj: Var{Name: "o"}, Prop: "p", Val: Var{Name: "v"}}, "o.p :=7 v"},
		{&DynUpdate{Meta: Meta{Idx: 8}, Obj: Var{Name: "o"}, Prop: Var{Name: "k"}, Val: Var{Name: "v"}}, "o[k] :=8 v"},
		{&NewObj{Meta: Meta{Idx: 9}, X: "o"}, "o :=9 {}"},
		{&Return{E: Var{Name: "r"}}, "return r"},
		{&Return{}, "return"},
		{&Break{}, "break"},
		{&Continue{}, "continue"},
	}
	for _, c := range stmts {
		if got := c.s.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestCallString(t *testing.T) {
	c := &Call{Meta: Meta{Idx: 2}, X: "r", CalleeName: "exec",
		Args: []Expr{Var{Name: "cmd"}, Lit{Kind: LitNumber, Value: "1"}}}
	if got := c.String(); got != "r :=2 exec(cmd, 1)" {
		t.Fatalf("got %q", got)
	}
	c.IsNew = true
	if !strings.Contains(c.String(), "new exec") {
		t.Fatalf("got %q", c.String())
	}
}

func mkTree() []Stmt {
	return []Stmt{
		&NewObj{Meta: Meta{Idx: 1}, X: "o"},
		&If{Cond: Var{Name: "c"},
			Then: []Stmt{&Assign{X: "a", E: Lit{Kind: LitNumber, Value: "1"}}},
			Else: []Stmt{&Assign{X: "a", E: Lit{Kind: LitNumber, Value: "2"}}},
		},
		&While{Cond: Var{Name: "c"}, Body: []Stmt{
			&Update{Meta: Meta{Idx: 2}, Obj: Var{Name: "o"}, Prop: "n", Val: Var{Name: "a"}},
		}},
		&ForIn{Meta: Meta{Idx: 3}, Key: "k", Obj: Var{Name: "o"}, Body: []Stmt{
			&Break{},
		}},
		&FuncDef{Meta: Meta{Idx: 4}, Name: "f", Params: []string{"p"}, Body: []Stmt{
			&Return{E: Var{Name: "p"}},
			&FuncDef{Meta: Meta{Idx: 5}, Name: "inner"},
		}},
	}
}

func TestWalkAndCount(t *testing.T) {
	stmts := mkTree()
	if got := CountStmts(stmts); got != 11 {
		t.Fatalf("CountStmts = %d, want 11", got)
	}
	// Prune: skipping the FuncDef hides its children.
	n := 0
	Walk(stmts, func(s Stmt) bool {
		n++
		_, isFn := s.(*FuncDef)
		return !isFn
	})
	if n != 9 { // 11 - return - inner
		t.Fatalf("pruned walk = %d, want 9", n)
	}
}

func TestFunctions(t *testing.T) {
	fns := Functions(mkTree())
	if len(fns) != 2 || fns[0].Name != "f" || fns[1].Name != "inner" {
		t.Fatalf("functions = %v", fns)
	}
}

func TestPrintStructure(t *testing.T) {
	out := Print(mkTree())
	for _, want := range []string{"if c {", "} else {", "while c {", "for k in o {", "func f(p) {", "o :=1 {}"} {
		if !strings.Contains(out, want) {
			t.Errorf("Print missing %q:\n%s", want, out)
		}
	}
	// Indentation present for nesting.
	if !strings.Contains(out, "  a := 1") {
		t.Errorf("nested statements should be indented:\n%s", out)
	}
}

func TestMetaAccessors(t *testing.T) {
	m := Meta{Idx: 7, Ln: 3}
	if m.Index() != 7 || m.Line() != 3 {
		t.Fatalf("meta = %+v", m)
	}
}

func TestCompoundStmtStrings(t *testing.T) {
	iff := &If{Cond: Var{Name: "c"}}
	if !strings.Contains(iff.String(), "if c") {
		t.Errorf("if = %q", iff.String())
	}
	w := &While{Cond: Var{Name: "c"}}
	if !strings.Contains(w.String(), "while c") {
		t.Errorf("while = %q", w.String())
	}
	fi := &ForIn{Key: "k", Obj: Var{Name: "o"}, Of: true}
	if !strings.Contains(fi.String(), "for k of o") {
		t.Errorf("forin = %q", fi.String())
	}
	fd := &FuncDef{Name: "f", Params: []string{"a", "b"}}
	if !strings.Contains(fd.String(), "func f(a, b)") {
		t.Errorf("funcdef = %q", fd.String())
	}
}
