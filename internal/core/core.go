// Package core defines the Core JavaScript intermediate representation
// from §3.2 of the paper. Full JavaScript is normalized (see
// internal/js/normalize) into this small statement language:
//
//	e ::= v | x
//	s ::= x := e | x :=i e1 ⊕ e2 | x :=i e.p | x :=i e1[e2]
//	    | e1.p :=i e2 | e1[e2] :=i e3 | x :=i {} | if | while
//	    | s1;s2 | x :=i f(e...)
//
// extended with function definitions, return, for-in/of loops and a few
// control statements needed to cover real npm code. Every statement that
// computes a new value or object carries a unique index i, which the
// abstract analysis uses as its allocation site.
package core

import (
	"fmt"
	"strings"
)

// ---------------------------------------------------------------------------
// Expressions: values and variables only (paper §3.2).
// ---------------------------------------------------------------------------

// Expr is a Core JavaScript expression: a value or a variable.
type Expr interface {
	exprNode()
	String() string
}

// Var references a program variable (possibly compiler-generated).
type Var struct {
	Name string
}

func (Var) exprNode()        {}
func (v Var) String() string { return v.Name }

// LitKind enumerates the primitive value kinds of Core JavaScript.
type LitKind int

// Literal kinds.
const (
	LitNumber LitKind = iota
	LitString
	LitBool
	LitNull
	LitUndefined
	LitRegex
)

// Lit is a primitive literal value.
type Lit struct {
	Kind  LitKind
	Value string
}

func (Lit) exprNode() {}
func (l Lit) String() string {
	if l.Kind == LitString {
		return fmt.Sprintf("%q", l.Value)
	}
	return l.Value
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// Stmt is a Core JavaScript statement.
type Stmt interface {
	stmtNode()
	// Index returns the unique statement index i (0 when the statement
	// computes no new value).
	Index() int
	// Line returns the original source line.
	Line() int
	String() string
}

// Meta carries the statement index and original source position shared
// by all statements.
type Meta struct {
	Idx int
	Ln  int
	Col int
}

// Index returns the allocation-site index of the statement.
func (m Meta) Index() int { return m.Idx }

// Line returns the 1-based source line the statement came from.
func (m Meta) Line() int { return m.Ln }

func (Meta) stmtNode() {}

// Assign is `x := e`.
type Assign struct {
	Meta
	X string
	E Expr
}

func (s *Assign) String() string { return fmt.Sprintf("%s := %s", s.X, s.E) }

// BinOp is `x :=i e1 ⊕ e2`.
type BinOp struct {
	Meta
	X    string
	Op   string
	L, R Expr
}

func (s *BinOp) String() string {
	return fmt.Sprintf("%s :=%d %s %s %s", s.X, s.Idx, s.L, s.Op, s.R)
}

// UnOp is `x :=i ⊕ e` (prefix operators).
type UnOp struct {
	Meta
	X  string
	Op string
	E  Expr
}

func (s *UnOp) String() string { return fmt.Sprintf("%s :=%d %s%s", s.X, s.Idx, s.Op, s.E) }

// Lookup is the static property lookup `x :=i e.p`.
type Lookup struct {
	Meta
	X    string
	Obj  Expr
	Prop string
}

func (s *Lookup) String() string { return fmt.Sprintf("%s :=%d %s.%s", s.X, s.Idx, s.Obj, s.Prop) }

// DynLookup is the dynamic property lookup `x :=i e1[e2]`.
type DynLookup struct {
	Meta
	X    string
	Obj  Expr
	Prop Expr
}

func (s *DynLookup) String() string { return fmt.Sprintf("%s :=%d %s[%s]", s.X, s.Idx, s.Obj, s.Prop) }

// Update is the static property update `e1.p :=i e2`.
type Update struct {
	Meta
	Obj  Expr
	Prop string
	Val  Expr
}

func (s *Update) String() string { return fmt.Sprintf("%s.%s :=%d %s", s.Obj, s.Prop, s.Idx, s.Val) }

// DynUpdate is the dynamic property update `e1[e2] :=i e3`.
type DynUpdate struct {
	Meta
	Obj  Expr
	Prop Expr
	Val  Expr
}

func (s *DynUpdate) String() string {
	return fmt.Sprintf("%s[%s] :=%d %s", s.Obj, s.Prop, s.Idx, s.Val)
}

// NewObj is `x :=i {}` — object, array, or other allocation.
type NewObj struct {
	Meta
	X string
}

func (s *NewObj) String() string { return fmt.Sprintf("%s :=%d {}", s.X, s.Idx) }

// If is `if e then s1 else s2`.
type If struct {
	Meta
	Cond Expr
	Then []Stmt
	Else []Stmt
}

func (s *If) String() string { return fmt.Sprintf("if %s then … else …", s.Cond) }

// While is `while e do s`.
type While struct {
	Meta
	Cond Expr
	Body []Stmt
}

func (s *While) String() string { return fmt.Sprintf("while %s do …", s.Cond) }

// ForIn iterates the keys (or values, when Of) of an object. Key binds
// the loop variable, which depends on the iterated object.
type ForIn struct {
	Meta
	Key  string
	Obj  Expr
	Body []Stmt
	Of   bool
}

func (s *ForIn) String() string {
	kw := "in"
	if s.Of {
		kw = "of"
	}
	return fmt.Sprintf("for %s %s %s do …", s.Key, kw, s.Obj)
}

// Call is `x :=i f(e1, ..., en)`. Callee is the variable holding the
// function value; CalleeName preserves the source-level callee path
// (e.g. "exec", "fs.readFile") for sink matching; This optionally names
// the receiver variable of a method call.
type Call struct {
	Meta
	X          string
	Callee     Expr
	CalleeName string
	This       Expr // nil for plain calls
	Args       []Expr
	IsNew      bool
}

func (s *Call) String() string {
	var args []string
	for _, a := range s.Args {
		args = append(args, a.String())
	}
	nw := ""
	if s.IsNew {
		nw = "new "
	}
	return fmt.Sprintf("%s :=%d %s%s(%s)", s.X, s.Idx, nw, s.CalleeName, strings.Join(args, ", "))
}

// FuncDef introduces a function. The body is Core JavaScript; Params are
// plain identifiers (patterns are expanded by the normalizer).
type FuncDef struct {
	Meta
	Name   string // unique within the program (synthesized for anonymous)
	Params []string
	Body   []Stmt
}

func (s *FuncDef) String() string {
	return fmt.Sprintf("func %s(%s) :=%d …", s.Name, strings.Join(s.Params, ", "), s.Idx)
}

// Return is `return e` (E may be nil).
type Return struct {
	Meta
	E Expr
}

func (s *Return) String() string {
	if s.E == nil {
		return "return"
	}
	return fmt.Sprintf("return %s", s.E)
}

// Break exits the innermost loop; the abstract analysis treats it as a
// no-op (joining over-approximates all exits).
type Break struct{ Meta }

func (s *Break) String() string { return "break" }

// Continue re-enters the innermost loop; treated like Break.
type Continue struct{ Meta }

func (s *Continue) String() string { return "continue" }

// Program is a whole normalized compilation unit.
type Program struct {
	FileName string
	Body     []Stmt
	// MaxIndex is one past the highest statement index used.
	MaxIndex int
}

// ---------------------------------------------------------------------------
// Pretty printing and traversal
// ---------------------------------------------------------------------------

// Print renders the statement list with indentation, one statement per
// line; used in tests and the CLI's -dump-core mode.
func Print(stmts []Stmt) string {
	var sb strings.Builder
	printInto(&sb, stmts, 0)
	return sb.String()
}

func printInto(sb *strings.Builder, stmts []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range stmts {
		switch st := s.(type) {
		case *If:
			fmt.Fprintf(sb, "%sif %s {\n", ind, st.Cond)
			printInto(sb, st.Then, depth+1)
			if len(st.Else) > 0 {
				fmt.Fprintf(sb, "%s} else {\n", ind)
				printInto(sb, st.Else, depth+1)
			}
			fmt.Fprintf(sb, "%s}\n", ind)
		case *While:
			fmt.Fprintf(sb, "%swhile %s {\n", ind, st.Cond)
			printInto(sb, st.Body, depth+1)
			fmt.Fprintf(sb, "%s}\n", ind)
		case *ForIn:
			kw := "in"
			if st.Of {
				kw = "of"
			}
			fmt.Fprintf(sb, "%sfor %s %s %s {\n", ind, st.Key, kw, st.Obj)
			printInto(sb, st.Body, depth+1)
			fmt.Fprintf(sb, "%s}\n", ind)
		case *FuncDef:
			fmt.Fprintf(sb, "%sfunc %s(%s) {  // idx=%d\n", ind, st.Name, strings.Join(st.Params, ", "), st.Idx)
			printInto(sb, st.Body, depth+1)
			fmt.Fprintf(sb, "%s}\n", ind)
		default:
			fmt.Fprintf(sb, "%s%s\n", ind, s)
		}
	}
}

// Walk visits every statement in the tree in pre-order, recursing into
// the bodies of compound statements. fn returning false prunes descent.
func Walk(stmts []Stmt, fn func(Stmt) bool) {
	for _, s := range stmts {
		if !fn(s) {
			continue
		}
		switch st := s.(type) {
		case *If:
			Walk(st.Then, fn)
			Walk(st.Else, fn)
		case *While:
			Walk(st.Body, fn)
		case *ForIn:
			Walk(st.Body, fn)
		case *FuncDef:
			Walk(st.Body, fn)
		}
	}
}

// CountStmts returns the number of statements in the tree.
func CountStmts(stmts []Stmt) int {
	n := 0
	Walk(stmts, func(Stmt) bool { n++; return true })
	return n
}

// Functions returns all function definitions in the program, including
// nested ones, in definition order.
func Functions(stmts []Stmt) []*FuncDef {
	var out []*FuncDef
	Walk(stmts, func(s Stmt) bool {
		if f, ok := s.(*FuncDef); ok {
			out = append(out, f)
		}
		return true
	})
	return out
}
