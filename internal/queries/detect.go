package queries

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/budget"
	"repro/internal/graphdb"
	"repro/internal/mdg"
)

// Provenance records how a finding's sink is reachable from the
// package's API surface: the entry point (an export API name like
// "exports.run", or one of the markers "(module)" for top-level code,
// "(callback)" for escaped callbacks, "(fallback)" when the gate ran
// the every-function attack model, "(unresolved)" when no path was
// found) and the call-hop chain of file-qualified function names from
// the entry function down to the function owning the sink.
//
// Provenance is diagnostic metadata: it is excluded from finding
// identity (sorting, differential comparison, deduplication).
type Provenance struct {
	Entry    string
	Hops     []string
	Fallback bool
	// DepPath is the dependency-tree package chain the call path
	// crosses, root package first ("name@version (dir)" labels). Only
	// tree-mode scans fill it; like the rest of Provenance it is
	// excluded from finding identity.
	DepPath []string
}

// String renders the provenance as "entry → hop → … → hop".
func (p Provenance) String() string {
	out := p.Entry
	for _, h := range p.Hops {
		out += " → " + h
	}
	return out
}

// Finding is one reported potential vulnerability.
type Finding struct {
	CWE      CWE
	SinkName string // callee path of the sink call ("" for pollution)
	SinkLine int    // line of the sink call / polluting assignment
	SinkFile string // file of the sink (multi-file packages)
	Source   string // name of the tainted source parameter
	// Path is a witness node sequence from the source to the sink.
	Path []graphdb.NodeID
	// Provenance says how the sink is reachable from the exported API
	// (filled by the scanner's reach gate; zero when the gate did not
	// run, e.g. direct engine use in tests).
	Provenance Provenance
}

// String renders the finding for reports.
func (f Finding) String() string {
	if f.CWE == CWEPrototypePollution {
		return fmt.Sprintf("[%s] prototype pollution at line %d (source %s)", f.CWE, f.SinkLine, f.Source)
	}
	return fmt.Sprintf("[%s] tainted call to %s at line %d (source %s)", f.CWE, f.SinkName, f.SinkLine, f.Source)
}

// isBudgetErr reports whether err is (or wraps) a classified budget
// failure — a cooperative abort, not a query malfunction.
func isBudgetErr(err error) bool {
	var be *budget.Error
	return errors.As(err, &be)
}

// Detect runs all Table 2 vulnerability queries against a loaded MDG.
// A non-nil error means an internal query failed; partial findings are
// not returned in that case. Budget exhaustion (lg.Budget) is NOT an
// error: detection stops between query stages and the findings
// established so far are returned — the caller reads the budget to
// flag the result incomplete.
func Detect(lg *LoadedGraph, cfg *Config) ([]Finding, error) {
	if lg.LoadErr != nil {
		return nil, lg.LoadErr
	}
	lg.ApplySanitizers(cfg)
	var out []Finding
	for _, cwe := range []CWE{CWEPathTraversal, CWECommandInjection, CWECodeInjection} {
		if lg.Budget.Exceeded() {
			return sortFindings(out), nil
		}
		fs, err := DetectTaintStyle(lg, cfg, cwe)
		if err != nil {
			if isBudgetErr(err) {
				return sortFindings(out), nil
			}
			return nil, err
		}
		out = append(out, fs...)
	}
	if lg.Budget.Exceeded() {
		return sortFindings(out), nil
	}
	fs, err := DetectPrototypePollution(lg, cfg)
	if err != nil {
		if isBudgetErr(err) {
			return sortFindings(out), nil
		}
		return nil, err
	}
	out = append(out, fs...)
	return sortFindings(out), nil
}

func sortFindings(out []Finding) []Finding {
	sort.Slice(out, func(i, j int) bool { return findingLess(out[i], out[j]) })
	return out
}

// findingLess is the total report order over findings: primarily by
// sink line, then CWE, then file/name/source so ties order identically
// however the findings were produced (one combined scan or a stitched
// union of per-component scans).
func findingLess(a, b Finding) bool {
	if a.SinkLine != b.SinkLine {
		return a.SinkLine < b.SinkLine
	}
	if a.CWE != b.CWE {
		return a.CWE < b.CWE
	}
	if a.SinkFile != b.SinkFile {
		return a.SinkFile < b.SinkFile
	}
	if a.SinkName != b.SinkName {
		return a.SinkName < b.SinkName
	}
	return a.Source < b.Source
}

// SortFindings orders a finding slice in the canonical report order.
// The scanner's incremental path uses it to merge per-component
// finding sets into the same order a combined scan produces.
func SortFindings(out []Finding) []Finding { return sortFindings(out) }

// sources returns the taint-source nodes (parameters of exported
// functions), found via the query engine.
func (lg *LoadedGraph) sources() ([]*graphdb.Node, error) {
	res, err := lg.DB.Query(`MATCH (p:Param {source: true}) RETURN p`)
	if err != nil {
		return nil, fmt.Errorf("queries: sources: %w", err)
	}
	var out []*graphdb.Node
	for _, row := range res.Rows {
		out = append(out, row["p"].(*graphdb.Node))
	}
	return out, nil
}

// DetectTaintStyle implements the Table 2 taint-style query
// TaintPath_{o_s} ∘ Arg_{f,n} for the sinks of one class: a tainted
// path must connect a source to a sensitive argument of a sink call.
func DetectTaintStyle(lg *LoadedGraph, cfg *Config, cwe CWE) ([]Finding, error) {
	sinks := cfg.SinksFor(cwe)
	if len(sinks) == 0 {
		return nil, nil
	}
	srcs, err := lg.sources()
	if err != nil {
		return nil, err
	}
	if len(srcs) == 0 {
		return nil, nil
	}

	// Precompute taint reachability per source (amortizes the DFS over
	// all sinks).
	reach := make([]map[graphdb.NodeID]bool, len(srcs))
	for i, s := range srcs {
		reach[i] = lg.TaintReach(s.ID, cfg.MaxHops)
	}

	var out []Finding
	seen := map[string]bool{}
	for _, call := range lg.DB.NodesByLabel("Call") {
		name, _ := call.Props["name"].(string)
		var sink *Sink
		for i := range sinks {
			if MatchSink(name, sinks[i].Name) {
				sink = &sinks[i]
				break
			}
		}
		if sink == nil {
			continue
		}
		callLoc := mdg.Loc(call.Props["loc"].(int64))
		cn := lg.Result.Graph.Node(callLoc)
		if cn == nil {
			continue
		}
		for _, argPos := range sink.Args {
			if argPos >= len(cn.CallArgs) {
				continue
			}
			for _, argLoc := range cn.CallArgs[argPos] {
				argID := lg.ByLoc[argLoc]
				for i, src := range srcs {
					if !reach[i][argID] {
						continue
					}
					file, _ := call.Props["file"].(string)
					key := fmt.Sprintf("%s/%s/%d/%s", cwe, file, call.Props["line"], name)
					if seen[key] {
						continue
					}
					seen[key] = true
					srcName, _ := src.Props["name"].(string)
					out = append(out, Finding{
						CWE:      cwe,
						SinkName: name,
						SinkLine: int(call.Props["line"].(int64)),
						SinkFile: file,
						Source:   srcName,
						Path:     lg.TaintPathWitness(src.ID, argID, cfg.MaxHops),
					})
				}
			}
		}
	}
	return out, nil
}

// DetectPrototypePollution implements the Table 2 pollution query
// (ObjLookup* ∘ ObjAssignment*) filtered by three taint paths: an
// attacker must control the lookup property, the assigned property, and
// the assigned value (§4).
func DetectPrototypePollution(lg *LoadedGraph, cfg *Config) ([]Finding, error) {
	srcs, err := lg.sources()
	if err != nil {
		return nil, err
	}
	if len(srcs) == 0 {
		return nil, nil
	}
	reach := make([]map[graphdb.NodeID]bool, len(srcs))
	for i, s := range srcs {
		reach[i] = lg.TaintReach(s.ID, cfg.MaxHops)
	}
	tainted := func(id graphdb.NodeID) (int, bool) {
		for i := range srcs {
			if reach[i][id] {
				return i, true
			}
		}
		return 0, false
	}

	var out []Finding
	seen := map[string]bool{}

	// Static-key variant: an explicit `obj['__proto__']` /
	// `obj.constructor.prototype` lookup followed by a write of an
	// attacker-controlled value pollutes Object.prototype even when the
	// property names are literals — only the value needs tainting.
	lits, err := detectLiteralProtoPollution(lg, reach, srcs, seen, cfg.MaxHops)
	if err != nil {
		return nil, err
	}
	out = append(out, lits...)

	pairs, err := lg.ObjLookupStar()
	if err != nil {
		return nil, err
	}
	for _, pair := range pairs {
		sub := pair[1]
		// The lookup property must be attacker-controlled: sub is
		// tainted via its dynamic-property dependency.
		si, ok := tainted(sub.ID)
		if !ok {
			continue
		}
		avs, err := lg.ObjAssignmentStar(sub, cfg.MaxHops)
		if err != nil {
			return nil, err
		}
		for _, av := range avs {
			ver, val := av[0], av[1]
			if _, ok := tainted(ver.ID); !ok {
				continue // assigned property name not controlled
			}
			if _, ok := tainted(val.ID); !ok {
				continue // assigned value not controlled
			}
			line := int(ver.Props["line"].(int64))
			file, _ := ver.Props["file"].(string)
			key := fmt.Sprintf("pp/%s/%d", file, line)
			if seen[key] {
				continue
			}
			seen[key] = true
			srcName, _ := srcs[si].Props["name"].(string)
			out = append(out, Finding{
				CWE:      CWEPrototypePollution,
				SinkName: "prototype pollution",
				SinkLine: line,
				SinkFile: file,
				Source:   srcName,
				Path:     lg.TaintPathWitness(srcs[si].ID, sub.ID, cfg.MaxHops),
			})
		}
	}
	return out, nil
}

// detectLiteralProtoPollution finds the static `__proto__` pattern:
// (o)-[:P {prop:'__proto__'}]->(sub) with any later write on sub whose
// value is tainted, or the constructor.prototype two-step equivalent.
func detectLiteralProtoPollution(lg *LoadedGraph, reach []map[graphdb.NodeID]bool,
	srcs []*graphdb.Node, seen map[string]bool, maxHops int) ([]Finding, error) {
	tainted := func(id graphdb.NodeID) (int, bool) {
		for i := range srcs {
			if reach[i][id] {
				return i, true
			}
		}
		return 0, false
	}

	// Both `__proto__` lookups and `constructor` → `prototype` chains.
	res, err := lg.DB.Query(`
MATCH (o)-[:P {prop: '__proto__'}]->(sub)
RETURN DISTINCT sub`)
	if err != nil {
		return nil, fmt.Errorf("queries: proto lookup: %w", err)
	}
	subs := map[graphdb.NodeID]*graphdb.Node{}
	for _, row := range res.Rows {
		sub := row["sub"].(*graphdb.Node)
		subs[sub.ID] = sub
	}
	res, err = lg.DB.Query(`
MATCH (o)-[:P {prop: 'constructor'}]->(c)-[:P {prop: 'prototype'}]->(sub)
RETURN DISTINCT sub`)
	if err != nil {
		return nil, fmt.Errorf("queries: constructor.prototype lookup: %w", err)
	}
	for _, row := range res.Rows {
		sub := row["sub"].(*graphdb.Node)
		subs[sub.ID] = sub
	}

	// Deterministic sub order (database ids follow MDG location order);
	// map iteration order must not leak into dedup or witness choice.
	ids := make([]graphdb.NodeID, 0, len(subs))
	for id := range subs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var out []Finding
	for _, id := range ids {
		sub := subs[id]
		// Any write on (a version of) the prototype object whose value
		// is attacker-controlled.
		vq := `
MATCH (sub)-[:V*0..6]->(mid)-[v:V]->(ver)-[p:P]->(val)
WHERE id(sub) = ` + fmt.Sprint(int64(sub.ID)) + `
RETURN DISTINCT ver, val`
		vres, err := lg.DB.Query(vq)
		if err != nil {
			return nil, fmt.Errorf("queries: proto write scan: %w", err)
		}
		for _, row := range vres.Rows {
			ver := row["ver"].(*graphdb.Node)
			val := row["val"].(*graphdb.Node)
			si, ok := tainted(val.ID)
			if !ok {
				continue
			}
			line := int(ver.Props["line"].(int64))
			file, _ := ver.Props["file"].(string)
			key := fmt.Sprintf("pp/%s/%d", file, line)
			if seen[key] {
				continue
			}
			seen[key] = true
			srcName, _ := srcs[si].Props["name"].(string)
			out = append(out, Finding{
				CWE:      CWEPrototypePollution,
				SinkName: "prototype pollution",
				SinkLine: line,
				SinkFile: file,
				Source:   srcName,
				Path:     lg.TaintPathWitness(srcs[si].ID, val.ID, maxHops),
			})
		}
	}
	return out, nil
}
