package queries

import (
	"fmt"

	"repro/internal/graphdb"
)

// This file implements the base graph traversals of Table 1:
//
//	BasicPath     — any-edge path between two nodes
//	UntaintedPath — paths containing V(p) followed by P(p): the tainted
//	                property was overwritten along the way
//	TaintPath     — BasicPath \ UntaintedPath
//	Arg(f, n)     — the n-th argument of a call node
//	ObjLookup*    — object lookup via dynamic property
//	ObjAssignment*— object assignment via dynamic property
//
// TaintPath is evaluated with a dedicated search: a depth-first
// traversal that tracks which properties have been written (version
// edges) along the current path and prunes any extension that reads a
// written property (property edge with the same name) — such paths are
// untainted by definition. This matches the filtering semantics of the
// Cypher query used by Graph.js while remaining polynomial in practice.

// TaintPathExists reports whether a tainted path exists from src to dst
// (Table 1's TaintPath with dst specified). maxHops bounds the search.
func (lg *LoadedGraph) TaintPathExists(src, dst graphdb.NodeID, maxHops int) bool {
	return lg.taintSearch(src, func(id graphdb.NodeID) bool { return id == dst }, maxHops) != nil
}

// TaintPathWitness returns a witness tainted path from src to dst, or
// nil when none exists.
func (lg *LoadedGraph) TaintPathWitness(src, dst graphdb.NodeID, maxHops int) []graphdb.NodeID {
	return lg.taintSearch(src, func(id graphdb.NodeID) bool { return id == dst }, maxHops)
}

// TaintReach returns all nodes reachable from src via tainted paths.
func (lg *LoadedGraph) TaintReach(src graphdb.NodeID, maxHops int) map[graphdb.NodeID]bool {
	out := make(map[graphdb.NodeID]bool)
	lg.taintSearch(src, func(id graphdb.NodeID) bool {
		out[id] = true
		return false // keep exploring
	}, maxHops)
	return out
}

// pathState is a memoization key: node plus the canonical set of
// version-written properties still "open" along the path.
type pathState struct {
	node    graphdb.NodeID
	written string
}

// taintSearch runs the TaintPath DFS from src; accept is called on every
// reached node and a non-nil path is returned when it reports true.
func (lg *LoadedGraph) taintSearch(src graphdb.NodeID, accept func(graphdb.NodeID) bool, maxHops int) []graphdb.NodeID {
	if maxHops <= 0 {
		maxHops = DefaultMaxHops
	}
	type frame struct {
		id      graphdb.NodeID
		written map[string]bool
		depth   int
	}
	seen := make(map[pathState]bool)
	var path []graphdb.NodeID

	var dfs func(f frame) []graphdb.NodeID
	dfs = func(f frame) []graphdb.NodeID {
		if lg.Budget.Step() != nil {
			// Budget hit mid-search: abandon the search (the sticky
			// failure makes every outer frame bail out immediately);
			// Detect reports the findings established before the trip.
			return nil
		}
		key := pathState{node: f.id, written: writtenKey(f.written)}
		if seen[key] {
			return nil
		}
		seen[key] = true
		path = append(path, f.id)
		defer func() { path = path[:len(path)-1] }()

		if accept(f.id) {
			return append([]graphdb.NodeID(nil), path...)
		}
		if f.depth >= maxHops {
			// The hop bound silently under-approximates; count the
			// truncation so it is observable in reports.
			if len(lg.DB.Out(f.id)) > 0 {
				lg.Truncated++
			}
			return nil
		}
		for _, r := range lg.DB.Out(f.id) {
			if lg.sanitized[r.To] {
				// Sanitizer call: its result is clean (§6).
				continue
			}
			nw := f.written
			switch r.Type {
			case RelVer:
				// A version edge writes its property: remember it.
				p, _ := r.Props["prop"].(string)
				nw = withProp(f.written, p)
			case RelProp:
				// Reading a property that was overwritten along this
				// path yields the untainted (new) value: prune
				// (UntaintedPath pattern V(p) … P(p)).
				p, _ := r.Props["prop"].(string)
				if f.written[p] {
					continue
				}
			}
			if got := dfs(frame{id: r.To, written: nw, depth: f.depth + 1}); got != nil {
				return got
			}
		}
		return nil
	}
	return dfs(frame{id: src, written: map[string]bool{}})
}

func withProp(m map[string]bool, p string) map[string]bool {
	if m[p] {
		return m
	}
	n := make(map[string]bool, len(m)+1)
	for k := range m {
		n[k] = true
	}
	n[p] = true
	return n
}

func writtenKey(m map[string]bool) string {
	if len(m) == 0 {
		return ""
	}
	// Small maps: insertion-order independence via sorted concat.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Insertion sort (tiny n).
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	out := ""
	for _, k := range keys {
		out += k + "\x00"
	}
	return out
}

// BasicPathExists reports whether any path of at most maxHops edges
// connects src to dst (Table 1's BasicPath). It is evaluated through
// the query engine.
func (lg *LoadedGraph) BasicPathExists(src, dst graphdb.NodeID, maxHops int) bool {
	seen := map[graphdb.NodeID]bool{}
	var walk func(id graphdb.NodeID, depth int) bool
	walk = func(id graphdb.NodeID, depth int) bool {
		if id == dst {
			return true
		}
		if depth >= maxHops || seen[id] {
			return false
		}
		seen[id] = true
		for _, r := range lg.DB.Out(id) {
			if walk(r.To, depth+1) {
				return true
			}
		}
		return false
	}
	return walk(src, 0)
}

// CallArg is one (call, argument position) pair with the locations that
// flow into the argument — Table 1's Arg(f, n).
type CallArg struct {
	Call *graphdb.Node
	N    int
	Args []graphdb.NodeID
}

// ObjLookupStar finds all dynamic-property lookups: pairs (o, sub) with
// o -P(*)-> sub. Table 1's ObjLookup*.
func (lg *LoadedGraph) ObjLookupStar() ([][2]*graphdb.Node, error) {
	res, err := lg.DB.Query(`MATCH (o)-[:P {prop: '*'}]->(sub) RETURN o, sub`)
	if err != nil {
		return nil, fmt.Errorf("queries: ObjLookupStar: %w", err)
	}
	var out [][2]*graphdb.Node
	for _, row := range res.Rows {
		o := row["o"].(*graphdb.Node)
		sub := row["sub"].(*graphdb.Node)
		out = append(out, [2]*graphdb.Node{o, sub})
	}
	return out, nil
}

// ObjAssignmentStar finds, for a given sub-object, the dynamic
// assignments over it: (ver, val) pairs where some object reachable
// from sub (via version edges or dependency edges — the latter covers
// the recursive-merge idiom where the sub-object flows into a callee
// parameter before being assigned) has mid -V(*)-> ver -P(*)-> val.
// Table 1's ObjAssignment* composed with the chaining of Table 2.
func (lg *LoadedGraph) ObjAssignmentStar(sub *graphdb.Node, maxHops int) ([][2]*graphdb.Node, error) {
	// All dynamic assignments in the graph, via the query engine.
	res, err := lg.DB.Query(`
MATCH (mid)-[:V {prop: '*'}]->(ver)-[:P {prop: '*'}]->(val)
RETURN DISTINCT mid, ver, val`)
	if err != nil {
		return nil, fmt.Errorf("queries: ObjAssignmentStar: %w", err)
	}
	if len(res.Rows) == 0 {
		return nil, nil
	}
	reach := lg.TaintReach(sub.ID, maxHops)
	reach[sub.ID] = true
	var out [][2]*graphdb.Node
	for _, row := range res.Rows {
		mid := row["mid"].(*graphdb.Node)
		if !reach[mid.ID] {
			continue
		}
		out = append(out, [2]*graphdb.Node{row["ver"].(*graphdb.Node), row["val"].(*graphdb.Node)})
	}
	return out, nil
}
