// Package queries implements Graph.js's vulnerability detection layer
// (paper §4): the MDG is loaded into the embedded graph database
// (Load) and the Table 1 base traversals / Table 2 vulnerability
// queries are run against it (Detect). It is the "query" detection
// backend selected by scanner.Options.Engine; the native backend
// (internal/taint) answers the same questions without the database
// load, and differential mode cross-checks the two.
//
// The package also owns the detection configuration shared by every
// backend: Config carries the sink lists, sanitizers, and the MaxHops
// search bound (DefaultMaxHops), loaded from JSON so new taint-style
// classes are configuration, not code (§6). A Config is never written
// after construction, so one instance may be shared by concurrent
// scans; each Load call builds its own database instance.
package queries
