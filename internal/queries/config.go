package queries

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// CWE identifies a vulnerability class.
type CWE string

// The vulnerability classes detected by Graph.js (paper §2.2).
const (
	CWEPathTraversal      CWE = "CWE-22"   // path traversal
	CWECommandInjection   CWE = "CWE-78"   // OS command injection
	CWECodeInjection      CWE = "CWE-94"   // arbitrary code execution
	CWEPrototypePollution CWE = "CWE-1321" // prototype pollution
)

// AllCWEs lists the supported classes in report order.
var AllCWEs = []CWE{CWEPathTraversal, CWECommandInjection, CWECodeInjection, CWEPrototypePollution}

// DefaultMaxHops is the taint-search hop bound applied when a
// configuration leaves MaxHops unset. Searches cut short by the bound
// are counted in LoadedGraph.Truncated (and the native engine's
// equivalent) so the under-approximation is observable.
const DefaultMaxHops = 64

// Sink declares one unsafe sink function: its dotted name and the
// indices of sensitive arguments.
type Sink struct {
	CWE  CWE    `json:"cwe"`
	Name string `json:"name"`
	Args []int  `json:"args"`
}

// Config is the scanner's sink/source configuration. The sink list is
// settable dynamically via a JSON file (paper §4: "the list of Sinks
// considered by Graph.js can be set dynamically via a configuration
// file").
type Config struct {
	Sinks []Sink `json:"sinks"`
	// Sanitizers lists functions whose results are considered clean:
	// taint paths passing through a call to one of these names are not
	// reported. This implements the §6 extension ("the query can also
	// be extended to not report program-specific sanitization
	// functions, reducing false positives").
	Sanitizers []string `json:"sanitizers"`
	// MaxHops bounds taint-path searches.
	MaxHops int `json:"maxHops"`
	// RequireAsCodeInjection treats require(dynamic) as a CWE-94 sink
	// (the paper's Collected-dataset configuration; a major FP source,
	// §5.3).
	RequireAsCodeInjection bool `json:"requireAsCodeInjection"`
}

// IsSanitizer reports whether a callee path matches a configured
// sanitizer (same suffix matching as sinks).
func (c *Config) IsSanitizer(calleeName string) bool {
	for _, s := range c.Sanitizers {
		if MatchSink(calleeName, s) {
			return true
		}
	}
	return false
}

// DefaultConfig returns the sink set used throughout the evaluation,
// mirroring the sinks named in the paper (§4).
func DefaultConfig() *Config {
	return &Config{
		MaxHops: DefaultMaxHops,
		Sinks: []Sink{
			// Command injection (CWE-78).
			{CWE: CWECommandInjection, Name: "exec", Args: []int{0}},
			{CWE: CWECommandInjection, Name: "execSync", Args: []int{0}},
			{CWE: CWECommandInjection, Name: "child_process.spawn", Args: []int{0, 1}},
			{CWE: CWECommandInjection, Name: "spawnSync", Args: []int{0, 1}},
			{CWE: CWECommandInjection, Name: "child_process.execFile", Args: []int{0, 1}},
			{CWE: CWECommandInjection, Name: "execFileSync", Args: []int{0, 1}},
			// Code injection (CWE-94).
			{CWE: CWECodeInjection, Name: "eval", Args: []int{0}},
			{CWE: CWECodeInjection, Name: "Function", Args: []int{0, 1, 2}},
			{CWE: CWECodeInjection, Name: "vm.runInContext", Args: []int{0}},
			{CWE: CWECodeInjection, Name: "vm.runInNewContext", Args: []int{0}},
			{CWE: CWECodeInjection, Name: "vm.runInThisContext", Args: []int{0}},
			{CWE: CWECodeInjection, Name: "setTimeout", Args: []int{0}},
			{CWE: CWECodeInjection, Name: "setInterval", Args: []int{0}},
			// Path traversal (CWE-22).
			{CWE: CWEPathTraversal, Name: "fs.readFile", Args: []int{0}},
			{CWE: CWEPathTraversal, Name: "fs.readFileSync", Args: []int{0}},
			{CWE: CWEPathTraversal, Name: "fs.writeFile", Args: []int{0}},
			{CWE: CWEPathTraversal, Name: "fs.writeFileSync", Args: []int{0}},
			{CWE: CWEPathTraversal, Name: "fs.createReadStream", Args: []int{0}},
			{CWE: CWEPathTraversal, Name: "fs.createWriteStream", Args: []int{0}},
			{CWE: CWEPathTraversal, Name: "fs.appendFile", Args: []int{0}},
			{CWE: CWEPathTraversal, Name: "fs.appendFileSync", Args: []int{0}},
			{CWE: CWEPathTraversal, Name: "fs.unlink", Args: []int{0}},
			{CWE: CWEPathTraversal, Name: "fs.unlinkSync", Args: []int{0}},
			{CWE: CWEPathTraversal, Name: "fs.readdir", Args: []int{0}},
			{CWE: CWEPathTraversal, Name: "fs.readdirSync", Args: []int{0}},
		},
	}
}

// LoadConfig reads a JSON configuration file.
func LoadConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("queries: reading config: %w", err)
	}
	cfg := &Config{}
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("queries: parsing config: %w", err)
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = DefaultMaxHops
	}
	return cfg, nil
}

// MatchSink reports whether a call with the source-level callee path
// calleeName matches sink name. Matching is by dotted-path suffix:
// "exec" matches both `exec(...)` and `cp.exec(...)`;
// "fs.readFile" matches `fs.readFile(...)` and `require('fs').readFile`.
func MatchSink(calleeName, sinkName string) bool {
	if calleeName == sinkName {
		return true
	}
	cs := strings.Split(calleeName, ".")
	ss := strings.Split(sinkName, ".")
	if len(ss) == 1 {
		return cs[len(cs)-1] == ss[0]
	}
	if len(cs) < len(ss) {
		return false
	}
	// Compare the trailing segments.
	off := len(cs) - len(ss)
	for i := range ss {
		if cs[off+i] != ss[i] {
			return false
		}
	}
	return true
}

// SinksFor returns the sinks of one class.
func (c *Config) SinksFor(cwe CWE) []Sink {
	var out []Sink
	for _, s := range c.Sinks {
		if s.CWE == cwe {
			out = append(out, s)
		}
	}
	if cwe == CWECodeInjection && c.RequireAsCodeInjection {
		out = append(out, Sink{CWE: CWECodeInjection, Name: "require", Args: []int{0}})
	}
	return out
}
