package queries

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/budget"
	"repro/internal/graphdb"
	"repro/internal/mdg"
)

// LoadedGraph is an MDG loaded into the graph database, with the
// loc ↔ node-id correspondence.
type LoadedGraph struct {
	DB     *graphdb.DB
	ByLoc  map[mdg.Loc]graphdb.NodeID
	Result *analysis.Result

	// Truncated counts taint searches cut short by the hop bound while
	// unexplored edges remained — silent under-approximation made
	// observable. It accumulates across searches on this graph.
	Truncated int

	// Budget is the scan-wide fault-containment budget (nil =
	// unlimited): the database load charges it per node/edge, taint
	// traversals per visited node, and Detect stops between query
	// stages once it trips, returning the findings established so far.
	Budget *budget.Budget

	// LoadErr records a database-load inconsistency (an edge whose
	// endpoints could not be created); Detect surfaces it as a query
	// error.
	LoadErr error

	// sanitized marks call nodes matching configured sanitizers; taint
	// traversals do not pass through them (§6 extension).
	sanitized map[graphdb.NodeID]bool
}

// ApplySanitizers marks the call nodes whose callee matches one of the
// configuration's sanitizer names; subsequent taint searches treat them
// as taint barriers. Call it before Detect when the configuration
// carries sanitizers (Detect does this itself).
func (lg *LoadedGraph) ApplySanitizers(cfg *Config) {
	lg.sanitized = nil
	if cfg == nil || len(cfg.Sanitizers) == 0 {
		return
	}
	lg.sanitized = make(map[graphdb.NodeID]bool)
	for _, n := range lg.DB.NodesByLabel("Call") {
		name, _ := n.Props["name"].(string)
		if cfg.IsSanitizer(name) {
			lg.sanitized[n.ID] = true
		}
	}
}

// Edge type names used in the database.
const (
	RelDep  = "D"
	RelProp = "P"
	RelVer  = "V"
	// StarProp is the property-name value used for P(*)/V(*) edges.
	StarProp = "*"
)

// Load stores the analysis result's MDG into a fresh database. Node
// labels follow the MDG node kinds (Object, Call, Func, Param,
// Literal); edges become typed relationships with a `prop` property
// carrying the property name ("*" for unknown).
func Load(res *analysis.Result) *LoadedGraph {
	return LoadBudget(res, nil)
}

// LoadBudget is Load under a fault-containment budget: one step is
// charged per node and edge stored, and when the budget trips the load
// stops, leaving a prefix-complete graph whose queries yield partial
// (sound-but-incomplete) findings. The budget is also installed on the
// database so query execution cooperates with it.
func LoadBudget(res *analysis.Result, b *budget.Budget) *LoadedGraph {
	db := graphdb.NewDB()
	byLoc := make(map[mdg.Loc]graphdb.NodeID)
	lg := &LoadedGraph{DB: db, ByLoc: byLoc, Result: res, Budget: b}

	for _, n := range res.Graph.Nodes() {
		if b.Step() != nil {
			db.SetBudget(b)
			return lg
		}
		props := map[string]graphdb.Value{
			"loc":   int64(n.Loc),
			"label": n.Label,
			"site":  int64(n.Site),
			"line":  int64(n.Line),
			"file":  n.File,
		}
		var labels []string
		switch n.Kind {
		case mdg.KindCall:
			labels = []string{"Call"}
			props["name"] = n.CallName
		case mdg.KindFunc:
			labels = []string{"Func"}
			props["name"] = n.FuncName
			props["exported"] = n.Exported
		case mdg.KindParam:
			labels = []string{"Param"}
			props["name"] = n.Label
			props["source"] = n.Source
		case mdg.KindLiteral:
			labels = []string{"Literal"}
		default:
			labels = []string{"Object"}
		}
		if n.Source {
			props["source"] = true
		}
		dn := db.CreateNode(labels, props)
		byLoc[n.Loc] = dn.ID
	}

	for _, e := range res.Graph.Edges() {
		if b.Step() != nil {
			break
		}
		if _, ok := byLoc[e.From]; !ok {
			continue // endpoint beyond a budget-truncated node load
		}
		if _, ok := byLoc[e.To]; !ok {
			continue
		}
		var typ string
		prop := e.Prop
		switch e.Type {
		case mdg.Dep:
			typ = RelDep
		case mdg.Prop:
			typ = RelProp
		case mdg.PropStar:
			typ = RelProp
			prop = StarProp
		case mdg.Ver:
			typ = RelVer
		case mdg.VerStar:
			typ = RelVer
			prop = StarProp
		}
		props := map[string]graphdb.Value{}
		if typ != RelDep {
			props["prop"] = prop
		}
		// Endpoints exist (checked above); a CreateRel failure is a
		// store inconsistency, recorded rather than panicking so a
		// corpus sweep classifies it as a query error.
		if _, err := db.CreateRel(byLoc[e.From], byLoc[e.To], typ, props); err != nil && lg.LoadErr == nil {
			lg.LoadErr = fmt.Errorf("queries: load edge %v->%v: %w", e.From, e.To, err)
		}
	}

	db.SetBudget(b)
	return lg
}

// NodeOf returns the database node for an abstract location.
func (lg *LoadedGraph) NodeOf(l mdg.Loc) *graphdb.Node {
	return lg.DB.NodeByID(lg.ByLoc[l])
}
