package queries

import (
	"fmt"
	"strings"

	"repro/internal/graphdb"
	"repro/internal/mdg"
)

// This file expresses the taint-style detection as a declarative query
// over the graph database — the counterpart of the artifact's two
// Cypher queries (§4: "we wrote two Cypher queries with 80 lines of
// code"). The query enumerates candidate source→argument paths with a
// variable-length pattern; the UntaintedPath exclusion (a V(p) edge
// followed by a P(p) edge, Table 1) is applied to each returned path,
// mirroring how the Cypher query post-filters with path predicates.
//
// DetectTaintStyleCypher is observably equivalent to DetectTaintStyle
// (see TestCypherNativeEquivalence); the native traversal is the
// default because it memoizes, while the declarative version
// re-enumerates paths.

// cypherMaxHops bounds the declarative path enumeration; deep graphs
// fall back to the native search.
const cypherMaxHops = 24

// DetectTaintStyleCypher runs the taint-style query for one class
// through the query engine.
func DetectTaintStyleCypher(lg *LoadedGraph, cfg *Config, cwe CWE) ([]Finding, error) {
	lg.ApplySanitizers(cfg)
	sinks := cfg.SinksFor(cwe)
	if len(sinks) == 0 {
		return nil, nil
	}

	// Step 1 (declarative): all candidate paths from taint sources.
	q := fmt.Sprintf(`
MATCH p = (s:Param {source: true})-[:D|P|V*1..%d]->(t)
RETURN p, id(s) AS src, id(t) AS dst`, cypherMaxHops)
	res, err := lg.DB.Query(q)
	if err != nil {
		return nil, fmt.Errorf("queries: cypher taint query: %w", err)
	}

	// Tainted destinations per source, after the UntaintedPath filter.
	tainted := map[graphdb.NodeID]map[graphdb.NodeID][]graphdb.NodeID{}
	for _, row := range res.Rows {
		path := row["p"].(graphdb.Path)
		if pathUntainted(path) || pathSanitized(lg, path) {
			continue
		}
		src := graphdb.NodeID(row["src"].(int64))
		dst := graphdb.NodeID(row["dst"].(int64))
		if tainted[src] == nil {
			tainted[src] = map[graphdb.NodeID][]graphdb.NodeID{}
		}
		if tainted[src][dst] == nil {
			ids := make([]graphdb.NodeID, 0, len(path.Nodes))
			for _, n := range path.Nodes {
				ids = append(ids, n.ID)
			}
			tainted[src][dst] = ids
		}
	}

	// Step 2: chain with Arg(f, n) — sink calls and their sensitive
	// argument nodes.
	var out []Finding
	seen := map[string]bool{}
	for _, call := range lg.DB.NodesByLabel("Call") {
		name, _ := call.Props["name"].(string)
		var sink *Sink
		for i := range sinks {
			if MatchSink(name, sinks[i].Name) {
				sink = &sinks[i]
				break
			}
		}
		if sink == nil {
			continue
		}
		cn := lg.Result.Graph.Node(mdg.Loc(call.Props["loc"].(int64)))
		if cn == nil {
			continue
		}
		for _, argPos := range sink.Args {
			if argPos >= len(cn.CallArgs) {
				continue
			}
			for _, argLoc := range cn.CallArgs[argPos] {
				argID := lg.ByLoc[argLoc]
				for src, dsts := range tainted {
					path, ok := dsts[argID]
					if !ok && argID != src {
						continue
					}
					key := fmt.Sprintf("%s/%d/%s", cwe, call.Props["line"], name)
					if seen[key] {
						continue
					}
					seen[key] = true
					srcNode := lg.DB.NodeByID(src)
					srcName, _ := srcNode.Props["name"].(string)
					file, _ := call.Props["file"].(string)
					out = append(out, Finding{
						CWE:      cwe,
						SinkName: name,
						SinkLine: int(call.Props["line"].(int64)),
						SinkFile: file,
						Source:   srcName,
						Path:     path,
					})
				}
			}
		}
	}
	return out, nil
}

// pathUntainted applies the Table 1 UntaintedPath pattern: a version
// edge writing property prop followed later by a property edge reading
// the same prop means the tainted value was overwritten along the way.
func pathUntainted(p graphdb.Path) bool {
	written := map[string]bool{}
	for _, r := range p.Rels {
		prop, _ := r.Props["prop"].(string)
		switch r.Type {
		case RelVer:
			written[prop] = true
		case RelProp:
			if written[prop] {
				return true
			}
		}
	}
	return false
}

// pathSanitized reports whether the path passes through a sanitizer
// call node (§6 extension).
func pathSanitized(lg *LoadedGraph, p graphdb.Path) bool {
	if lg.sanitized == nil {
		return false
	}
	for _, n := range p.Nodes[1:] {
		if lg.sanitized[n.ID] {
			return true
		}
	}
	return false
}

// RenderTaintQuery returns the declarative query text for
// documentation and the CLI's -show-query flag.
func RenderTaintQuery() string {
	return strings.TrimSpace(fmt.Sprintf(`
MATCH p = (s:Param {source: true})-[:D|P|V*1..%d]->(t)
RETURN p, id(s) AS src, id(t) AS dst
// post-filter: drop paths matching UntaintedPath — a V(prop) edge
// followed by a P(prop) edge on the same property (Table 1) — then
// chain with Arg(f, n) for every configured sink f.`, cypherMaxHops))
}
