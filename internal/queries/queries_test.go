package queries

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/js/normalize"
)

func loadSrc(t *testing.T, src string) *LoadedGraph {
	t.Helper()
	prog, err := normalize.File(src, "test.js")
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	res := analysis.Analyze(prog, analysis.DefaultOptions())
	return Load(res)
}

func detect(t *testing.T, src string) []Finding {
	t.Helper()
	return mustDetect(t, loadSrc(t, src), DefaultConfig())
}

func mustDetect(t *testing.T, lg *LoadedGraph, cfg *Config) []Finding {
	t.Helper()
	fs, err := Detect(lg, cfg)
	if err != nil {
		t.Fatalf("Detect: %v", err)
	}
	return fs
}

func hasCWE(fs []Finding, cwe CWE) bool {
	for _, f := range fs {
		if f.CWE == cwe {
			return true
		}
	}
	return false
}

func findingsFor(fs []Finding, cwe CWE) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.CWE == cwe {
			out = append(out, f)
		}
	}
	return out
}

// TestGitResetCommandInjection: the paper's Fig. 1 example has an
// exploitable command injection at the exec call (line 7 of the
// snippet).
func TestGitResetCommandInjection(t *testing.T) {
	src := `
const { exec } = require('child_process');
function git_reset(config, op, branch_name, url) {
	var options = config[op];
	options[branch_name] = url;
	options.cmd = 'git reset HEAD~';
	exec(options.cmd + options.commit);
}
module.exports = git_reset;
`
	fs := detect(t, src)
	ci := findingsFor(fs, CWECommandInjection)
	if len(ci) == 0 {
		t.Fatalf("command injection not detected; findings: %v", fs)
	}
	if ci[0].SinkLine != 7 {
		t.Errorf("sink line = %d, want 7", ci[0].SinkLine)
	}
	if ci[0].SinkName != "exec" {
		t.Errorf("sink = %q", ci[0].SinkName)
	}
}

// TestGitResetPrototypePollution: the same example is also vulnerable
// to prototype pollution (Fig. 1e).
func TestGitResetPrototypePollution(t *testing.T) {
	src := `
function git_reset(config, op, branch_name, url) {
	var options = config[op];
	options[branch_name] = url;
	options.cmd = 'git reset HEAD~';
}
module.exports = git_reset;
`
	fs := detect(t, src)
	if !hasCWE(fs, CWEPrototypePollution) {
		t.Fatalf("prototype pollution not detected; findings: %v", fs)
	}
}

// TestSetValuePollution: the §5.5 case study (CVE-2021-23440 shape).
func TestSetValuePollution(t *testing.T) {
	src := `
function setValue(obj, prop, value) {
	var path = prop.split('.');
	var len = path.length;
	for (var i = 0; i < len; i++) {
		var p = path[i];
		if (i === len - 1) {
			obj[p] = value;
		}
		obj = obj[p];
	}
	return obj;
}
module.exports = setValue;
`
	fs := detect(t, src)
	if !hasCWE(fs, CWEPrototypePollution) {
		t.Fatalf("set-value pollution not detected; findings: %v", fs)
	}
}

func TestCodeInjectionEval(t *testing.T) {
	src := `
function run(input) { eval(input); }
module.exports = run;
`
	fs := detect(t, src)
	if !hasCWE(fs, CWECodeInjection) {
		t.Fatalf("eval injection not detected: %v", fs)
	}
}

func TestCodeInjectionFunctionConstructor(t *testing.T) {
	src := `
function make(body) { return new Function(body); }
module.exports = make;
`
	fs := detect(t, src)
	if !hasCWE(fs, CWECodeInjection) {
		t.Fatalf("Function constructor not detected: %v", fs)
	}
}

func TestPathTraversal(t *testing.T) {
	src := `
var fs = require('fs');
function readUserFile(name, cb) {
	fs.readFile('/data/' + name, cb);
}
module.exports = readUserFile;
`
	fs := detect(t, src)
	if !hasCWE(fs, CWEPathTraversal) {
		t.Fatalf("path traversal not detected: %v", fs)
	}
}

func TestBenignNotFlagged(t *testing.T) {
	src := `
const { exec } = require('child_process');
function status() {
	exec('git status');
}
module.exports = status;
`
	fs := detect(t, src)
	if len(fs) != 0 {
		t.Fatalf("benign program flagged: %v", fs)
	}
}

func TestConstantPropertyNoPollution(t *testing.T) {
	// Writing a constant property is not a pollution pattern.
	src := `
function set(obj, value) {
	obj.safe = value;
	return obj;
}
module.exports = set;
`
	fs := detect(t, src)
	if hasCWE(fs, CWEPrototypePollution) {
		t.Fatalf("constant write flagged as pollution: %v", fs)
	}
}

// TestOverwriteKillsTaint: the UntaintedPath filter — a tainted property
// overwritten with a constant before the sink is no longer tainted
// through that path.
func TestOverwriteKillsTaint(t *testing.T) {
	src := `
const { exec } = require('child_process');
function run(input) {
	var opts = {};
	opts.cmd = input;
	opts.cmd = 'git status';
	exec(opts.cmd);
}
module.exports = run;
`
	fs := detect(t, src)
	if hasCWE(fs, CWECommandInjection) {
		t.Fatalf("overwritten taint still flagged: %v", fs)
	}
}

func TestTaintThroughOverwriteOfOtherProp(t *testing.T) {
	// Overwriting a different property must not kill the taint.
	src := `
const { exec } = require('child_process');
function run(input) {
	var opts = {};
	opts.cmd = input;
	opts.other = 'x';
	exec(opts.cmd);
}
module.exports = run;
`
	fs := detect(t, src)
	if !hasCWE(fs, CWECommandInjection) {
		t.Fatalf("taint lost through unrelated overwrite: %v", fs)
	}
}

func TestInterproceduralDetection(t *testing.T) {
	src := `
const { exec } = require('child_process');
function doRun(cmd) { exec(cmd); }
function entry(userInput) { doRun('prefix ' + userInput); }
module.exports = entry;
`
	fs := detect(t, src)
	if !hasCWE(fs, CWECommandInjection) {
		t.Fatalf("interprocedural taint not detected: %v", fs)
	}
}

func TestUnexportedNotSource(t *testing.T) {
	// The vulnerable function is internal and never called with
	// attacker data: its params are not sources.
	src := `
const { exec } = require('child_process');
function internal(cmd) { exec(cmd); }
function entry() { internal('git status'); }
module.exports = entry;
`
	fs := detect(t, src)
	if hasCWE(fs, CWECommandInjection) {
		t.Fatalf("internal function flagged: %v", fs)
	}
}

func TestRequireSinkOptIn(t *testing.T) {
	src := `
function load(name) { return require(name); }
module.exports = load;
`
	// Off by default.
	fs := detect(t, src)
	if hasCWE(fs, CWECodeInjection) {
		t.Fatalf("require flagged without opt-in: %v", fs)
	}
	cfg := DefaultConfig()
	cfg.RequireAsCodeInjection = true
	fs = mustDetect(t, loadSrc(t, src), cfg)
	if !hasCWE(fs, CWECodeInjection) {
		t.Fatalf("require sink not detected with opt-in: %v", fs)
	}
}

func TestMatchSink(t *testing.T) {
	cases := []struct {
		callee, sink string
		want         bool
	}{
		{"exec", "exec", true},
		{"cp.exec", "exec", true},
		{"child_process.exec", "exec", true},
		{"fs.readFile", "fs.readFile", true},
		{"x.fs.readFile", "fs.readFile", true},
		{"readFile", "fs.readFile", false},
		{"executeAll", "exec", false},
		{"spawn", "child_process.spawn", false},
		{"child_process.spawn", "child_process.spawn", true},
	}
	for _, c := range cases {
		if got := MatchSink(c.callee, c.sink); got != c.want {
			t.Errorf("MatchSink(%q, %q) = %v, want %v", c.callee, c.sink, got, c.want)
		}
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{CWE: CWECommandInjection, SinkName: "exec", SinkLine: 3, Source: "a"}
	if f.String() == "" {
		t.Fatal("empty rendering")
	}
	p := Finding{CWE: CWEPrototypePollution, SinkLine: 4, Source: "b"}
	if p.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestLoadPreservesCounts(t *testing.T) {
	lg := loadSrc(t, "function f(a) { eval(a); } module.exports = f;")
	if lg.DB.NumNodes() != lg.Result.Graph.NumNodes() {
		t.Errorf("node count mismatch: db=%d mdg=%d", lg.DB.NumNodes(), lg.Result.Graph.NumNodes())
	}
	if lg.DB.NumRels() != lg.Result.Graph.NumEdges() {
		t.Errorf("edge count mismatch: db=%d mdg=%d", lg.DB.NumRels(), lg.Result.Graph.NumEdges())
	}
}

func TestConfigRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	if len(cfg.SinksFor(CWECommandInjection)) == 0 {
		t.Fatal("no command-injection sinks")
	}
	if len(cfg.SinksFor(CWEPathTraversal)) == 0 {
		t.Fatal("no path-traversal sinks")
	}
	if len(cfg.SinksFor(CWECodeInjection)) == 0 {
		t.Fatal("no code-injection sinks")
	}
}

func TestSanitizerNotModeled(t *testing.T) {
	// Sanitization via an unknown helper keeps the taint (documented
	// FP source, §5.3); this asserts the over-approximation.
	src := `
const { exec } = require('child_process');
function run(input) {
	var safe = sanitize(input);
	exec(safe);
}
module.exports = run;
`
	fs := detect(t, src)
	if !hasCWE(fs, CWECommandInjection) {
		t.Fatalf("over-approximation expected to flag sanitized flow: %v", fs)
	}
}

func TestTemplateLiteralTaint(t *testing.T) {
	src := "const { exec } = require('child_process');\n" +
		"function run(branch) { exec(`git checkout ${branch}`); }\n" +
		"module.exports = run;\n"
	fs := detect(t, src)
	if !hasCWE(fs, CWECommandInjection) {
		t.Fatalf("template literal taint not detected: %v", fs)
	}
}

func TestMergeRecursivePollution(t *testing.T) {
	// The classic recursive merge pollution pattern.
	src := `
function merge(target, source) {
	for (var key in source) {
		if (typeof source[key] === 'object') {
			merge(target[key], source[key]);
		} else {
			target[key] = source[key];
		}
	}
	return target;
}
module.exports = merge;
`
	fs := detect(t, src)
	if !hasCWE(fs, CWEPrototypePollution) {
		t.Fatalf("merge pollution not detected: %v", fs)
	}
}

func TestMultipleFindingsSorted(t *testing.T) {
	src := `
const { exec } = require('child_process');
var fs = require('fs');
function f(a, b) {
	exec(a);
	fs.readFile(b);
}
module.exports = f;
`
	fs := detect(t, src)
	if len(fs) < 2 {
		t.Fatalf("want 2+ findings: %v", fs)
	}
	for i := 1; i < len(fs); i++ {
		if fs[i].SinkLine < fs[i-1].SinkLine {
			t.Fatal("findings not sorted by line")
		}
	}
}

func TestSanitizerBreaksTaint(t *testing.T) {
	src := `
const { exec } = require('child_process');
function run(input) {
	var safe = shellEscape(input);
	exec('git clone ' + safe);
}
module.exports = run;
`
	// Without sanitizer config: flagged (over-approximation).
	fs := detect(t, src)
	if !hasCWE(fs, CWECommandInjection) {
		t.Fatalf("expected over-approximated finding: %v", fs)
	}
	// With the program-specific sanitizer declared (§6): clean.
	cfg := DefaultConfig()
	cfg.Sanitizers = []string{"shellEscape"}
	fs = mustDetect(t, loadSrc(t, src), cfg)
	if hasCWE(fs, CWECommandInjection) {
		t.Fatalf("sanitizer must break the taint path: %v", fs)
	}
}

func TestSanitizerDoesNotBreakOtherPaths(t *testing.T) {
	src := `
const { exec } = require('child_process');
function run(input) {
	var safe = shellEscape(input);
	exec(input + safe);
}
module.exports = run;
`
	cfg := DefaultConfig()
	cfg.Sanitizers = []string{"shellEscape"}
	fs := mustDetect(t, loadSrc(t, src), cfg)
	if !hasCWE(fs, CWECommandInjection) {
		t.Fatalf("direct flow must still be reported: %v", fs)
	}
}

func TestSanitizerSuffixMatching(t *testing.T) {
	src := `
const { exec } = require('child_process');
var validator = require('validator');
function run(input) {
	exec(validator.escape(input));
}
module.exports = run;
`
	cfg := DefaultConfig()
	cfg.Sanitizers = []string{"escape"}
	fs := mustDetect(t, loadSrc(t, src), cfg)
	if hasCWE(fs, CWECommandInjection) {
		t.Fatalf("method-style sanitizer must match: %v", fs)
	}
}

// TestSQLInjectionViaConfig checks the §6 extensibility claim: SQL
// injection detection needs only a configuration change.
func TestSQLInjectionViaConfig(t *testing.T) {
	src := `
function findUser(name, cb) {
	conn.query('SELECT * FROM users WHERE name = "' + name + '"', cb);
}
module.exports = findUser;
`
	cfg := &Config{
		MaxHops: 64,
		Sinks:   []Sink{{CWE: CWE("CWE-89"), Name: "conn.query", Args: []int{0}}},
	}
	lg := loadSrc(t, src)
	fs, err := DetectTaintStyle(lg, cfg, CWE("CWE-89"))
	if err != nil {
		t.Fatalf("DetectTaintStyle: %v", err)
	}
	if len(fs) != 1 || fs[0].SinkLine != 3 {
		t.Fatalf("SQL injection not detected: %v", fs)
	}
}

// TestCypherNativeEquivalence: the declarative (query-engine) taint
// detection and the native traversal agree on a battery of programs.
func TestCypherNativeEquivalence(t *testing.T) {
	programs := []string{
		`const { exec } = require('child_process');
function run(c) { exec('git ' + c); }
module.exports = run;`,
		`const { exec } = require('child_process');
function run(input) {
	var opts = {};
	opts.cmd = input;
	opts.cmd = 'safe';
	exec(opts.cmd);
}
module.exports = run;`,
		`const { exec } = require('child_process');
function helper(x) { exec(x); }
function entry(y) { helper(y); }
module.exports = entry;`,
		`function benign(a) { return a + 1; }
module.exports = benign;`,
		`function run(input) { eval(input); }
module.exports = run;`,
	}
	cfg := DefaultConfig()
	for i, src := range programs {
		lg := loadSrc(t, src)
		for _, cwe := range []CWE{CWECommandInjection, CWECodeInjection} {
			native, err := DetectTaintStyle(lg, cfg, cwe)
			if err != nil {
				t.Fatalf("DetectTaintStyle: %v", err)
			}
			declarative, err := DetectTaintStyleCypher(lg, cfg, cwe)
			if err != nil {
				t.Fatalf("DetectTaintStyleCypher: %v", err)
			}
			if len(native) != len(declarative) {
				t.Errorf("program %d %s: native %d vs declarative %d findings",
					i, cwe, len(native), len(declarative))
				continue
			}
			for j := range native {
				if native[j].SinkLine != declarative[j].SinkLine ||
					native[j].SinkName != declarative[j].SinkName {
					t.Errorf("program %d %s: finding %d differs: %v vs %v",
						i, cwe, j, native[j], declarative[j])
				}
			}
		}
	}
}

func TestRenderTaintQuery(t *testing.T) {
	q := RenderTaintQuery()
	if !strings.Contains(q, "MATCH p =") || !strings.Contains(q, "Param") {
		t.Fatalf("query text: %q", q)
	}
}

// TestLiteralProtoPollution: explicit __proto__ writes only need a
// tainted value.
func TestLiteralProtoPollution(t *testing.T) {
	src := `
function poison(value) {
	var o = {};
	o['__proto__']['polluted'] = value;
}
module.exports = poison;
`
	fs := detect(t, src)
	if !hasCWE(fs, CWEPrototypePollution) {
		t.Fatalf("literal __proto__ pollution missed: %v", fs)
	}
}

func TestConstructorPrototypePollution(t *testing.T) {
	src := `
function poison(value) {
	var o = {};
	o.constructor.prototype.bad = value;
}
module.exports = poison;
`
	fs := detect(t, src)
	if !hasCWE(fs, CWEPrototypePollution) {
		t.Fatalf("constructor.prototype pollution missed: %v", fs)
	}
}

func TestLiteralProtoCleanValueNotFlagged(t *testing.T) {
	src := `
function setup(unused) {
	var o = {};
	o['__proto__']['helper'] = 'fixed';
}
module.exports = setup;
`
	fs := detect(t, src)
	if hasCWE(fs, CWEPrototypePollution) {
		t.Fatalf("constant prototype write flagged: %v", fs)
	}
}
