package deptree

import (
	"strings"
	"testing"
)

// FuzzDepResolve feeds arbitrary file layouts, package.json contents
// and specifiers through Build/Resolve/Owner/Problems and asserts the
// resolver never panics and never resolves to a path outside the tree.
func FuzzDepResolve(f *testing.F) {
	f.Add("index.js", `{"name":"root","dependencies":{"a":"1"}}`, "a")
	f.Add("node_modules/a/index.js", `{"name":"a","main":"lib"}`, "a/sub")
	f.Add("node_modules/@o/p/index.js", `{"main":"../../x"}`, "@o/p")
	f.Add("node_modules/a/node_modules/b/index.js", `{nope}`, "b")
	f.Add("a/../../x.js", `{"main":"/etc/passwd"}`, "../escape")
	f.Fuzz(func(t *testing.T, rel, pkgjson, spec string) {
		files := map[string]string{
			"index.js":     "module.exports = 1;",
			"package.json": pkgjson,
		}
		// Place the fuzzed file and give its directory a package.json
		// too, so fuzzed paths exercise package discovery.
		if rel != "" && !strings.HasPrefix(rel, "/") {
			files[rel] = "x"
		}
		tree := Build(files)
		if tree.Root() == nil {
			t.Fatal("tree lost its root")
		}
		for _, p := range tree.Packages {
			for _, fr := range p.Files {
				if strings.HasPrefix(fr, "..") || strings.HasPrefix(fr, "/") {
					t.Fatalf("package %q owns file %q outside the tree", p.Dir, fr)
				}
			}
			got, err := tree.Resolve(p, spec)
			if err != nil {
				continue
			}
			if _, ok := files[got]; !ok {
				t.Fatalf("Resolve(%q, %q) = %q: not a tree file", p.Dir, spec, got)
			}
			if strings.HasPrefix(got, "..") || strings.HasPrefix(got, "/") {
				t.Fatalf("Resolve(%q, %q) = %q escapes the tree", p.Dir, spec, got)
			}
		}
		_ = tree.Problems()
		for rel := range files {
			_ = tree.Owner(rel)
		}
	})
}
