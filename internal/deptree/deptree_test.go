package deptree

import (
	"errors"
	"strings"
	"testing"
)

// treeCase is one resolver edge case: a file set, a resolution to
// attempt, and the expected outcome.
type treeCase struct {
	name  string
	files map[string]string
	from  string // package dir to resolve from
	spec  string
	want  string // resolved entry ("" when an error is expected)
	// wantErr matches the error type: "missing", "broken", "external".
	wantErr string
	// wantProblems is the expected Problems() count.
	wantProblems int
}

func pj(s string) string { return s }

var treeCases = []treeCase{
	{
		name: "direct dependency via main field",
		files: map[string]string{
			"index.js":                     "module.exports = 1;",
			"package.json":                 pj(`{"name":"root","dependencies":{"a":"1.0.0"}}`),
			"node_modules/a/package.json":  pj(`{"name":"a","version":"1.0.0","main":"lib/entry.js"}`),
			"node_modules/a/lib/entry.js":  "module.exports = 2;",
			"node_modules/a/lib/other.js":  "module.exports = 3;",
			"node_modules/a/lib/extra.txt": "not js",
		},
		from: "", spec: "a", want: "node_modules/a/lib/entry.js",
	},
	{
		name: "main without extension",
		files: map[string]string{
			"index.js":                    "x",
			"node_modules/a/package.json": pj(`{"name":"a","main":"lib/entry"}`),
			"node_modules/a/lib/entry.js": "x",
		},
		from: "", spec: "a", want: "node_modules/a/lib/entry.js",
	},
	{
		name: "main directory resolves to its index.js",
		files: map[string]string{
			"index.js":                    "x",
			"node_modules/a/package.json": pj(`{"name":"a","main":"lib"}`),
			"node_modules/a/lib/index.js": "x",
		},
		from: "", spec: "a", want: "node_modules/a/lib/index.js",
	},
	{
		name: "index.js fallback when main is absent",
		files: map[string]string{
			"index.js":                    "x",
			"node_modules/a/package.json": pj(`{"name":"a"}`),
			"node_modules/a/index.js":     "x",
		},
		from: "", spec: "a", want: "node_modules/a/index.js",
	},
	{
		name: "index.js fallback when package.json is absent entirely",
		files: map[string]string{
			"index.js":                "x",
			"node_modules/a/index.js": "x",
		},
		from: "", spec: "a", want: "node_modules/a/index.js",
	},
	{
		name: "subpath require",
		files: map[string]string{
			"index.js":                    "x",
			"node_modules/a/package.json": pj(`{"name":"a"}`),
			"node_modules/a/index.js":     "x",
			"node_modules/a/sub.js":       "x",
		},
		from: "", spec: "a/sub", want: "node_modules/a/sub.js",
	},
	{
		name: "subpath directory require",
		files: map[string]string{
			"index.js":                      "x",
			"node_modules/a/index.js":       "x",
			"node_modules/a/util/index.js":  "x",
			"node_modules/a/util/helper.js": "x",
		},
		from: "", spec: "a/util", want: "node_modules/a/util/index.js",
	},
	{
		name: "scoped package",
		files: map[string]string{
			"index.js":                           "x",
			"node_modules/@org/pkg/index.js":     "x",
			"node_modules/@org/pkg/package.json": pj(`{"name":"@org/pkg"}`),
		},
		from: "", spec: "@org/pkg", want: "node_modules/@org/pkg/index.js",
	},
	{
		name: "scoped package subpath",
		files: map[string]string{
			"index.js":                       "x",
			"node_modules/@org/pkg/index.js": "x",
			"node_modules/@org/pkg/sub.js":   "x",
		},
		from: "", spec: "@org/pkg/sub", want: "node_modules/@org/pkg/sub.js",
	},
	{
		name: "nested node_modules shadows the outer version",
		files: map[string]string{
			"index.js":                               "x",
			"node_modules/a/index.js":                "x",
			"node_modules/a/node_modules/b/index.js": "inner",
			"node_modules/b/index.js":                "outer",
		},
		from: "node_modules/a", spec: "b", want: "node_modules/a/node_modules/b/index.js",
	},
	{
		name: "walk-up finds the hoisted dependency",
		files: map[string]string{
			"index.js":                "x",
			"node_modules/a/index.js": "x",
			"node_modules/b/index.js": "outer",
		},
		from: "node_modules/a", spec: "b", want: "node_modules/b/index.js",
	},
	{
		name: "missing declared dependency is a classified failure",
		files: map[string]string{
			"index.js":     "x",
			"package.json": pj(`{"name":"root","dependencies":{"ghost":"1.0.0"}}`),
		},
		from: "", spec: "ghost", wantErr: "missing", wantProblems: 1,
	},
	{
		name: "undeclared uninstalled name is external, not a problem",
		files: map[string]string{
			"index.js":     "x",
			"package.json": pj(`{"name":"root"}`),
		},
		from: "", spec: "child_process", wantErr: "external",
	},
	{
		name: "package.json parse error is a broken package",
		files: map[string]string{
			"index.js":                    "x",
			"package.json":                pj(`{"name":"root","dependencies":{"a":"1.0.0"}}`),
			"node_modules/a/package.json": pj(`{"name": "a", nope}`),
			"node_modules/a/index.js":     "x",
		},
		from: "", spec: "a", wantErr: "broken", wantProblems: 1,
	},
	{
		name: "main pointing nowhere is a broken package",
		files: map[string]string{
			"index.js":                    "x",
			"node_modules/a/package.json": pj(`{"name":"a","main":"gone.js"}`),
			"node_modules/a/other.js":     "x",
		},
		from: "", spec: "a", wantErr: "broken", wantProblems: 1,
	},
	{
		name: "dependency cycle resolves structurally",
		files: map[string]string{
			"index.js":                    "x",
			"package.json":                pj(`{"name":"root","dependencies":{"a":"1"}}`),
			"node_modules/a/package.json": pj(`{"name":"a","dependencies":{"b":"1"}}`),
			"node_modules/a/index.js":     "x",
			"node_modules/b/package.json": pj(`{"name":"b","dependencies":{"a":"1"}}`),
			"node_modules/b/index.js":     "x",
		},
		from: "node_modules/b", spec: "a", want: "node_modules/a/index.js",
	},
	{
		name: "main escaping the package does not resolve",
		files: map[string]string{
			"index.js":                    "x",
			"secret.js":                   "x",
			"node_modules/a/package.json": pj(`{"name":"a","main":"../../secret.js"}`),
		},
		from: "", spec: "a", wantErr: "broken", wantProblems: 1,
	},
	{
		name: "subpath escaping the package does not resolve",
		files: map[string]string{
			"index.js":                "x",
			"secret.js":               "x",
			"node_modules/a/index.js": "x",
		},
		from: "", spec: "a/../../secret", wantErr: "broken",
	},
}

func TestResolveCases(t *testing.T) {
	for _, tc := range treeCases {
		t.Run(tc.name, func(t *testing.T) {
			tree := Build(tc.files)
			from := tree.ByDir(tc.from)
			if from == nil {
				t.Fatalf("no package at %q", tc.from)
			}
			got, err := tree.Resolve(from, tc.spec)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Resolve(%q) error: %v", tc.spec, err)
				}
				if got != tc.want {
					t.Fatalf("Resolve(%q) = %q, want %q", tc.spec, got, tc.want)
				}
			} else {
				if err == nil {
					t.Fatalf("Resolve(%q) = %q, want %s error", tc.spec, got, tc.wantErr)
				}
				var me *MissingError
				var be *BrokenError
				var ee *ExternalError
				switch tc.wantErr {
				case "missing":
					if !errors.As(err, &me) {
						t.Fatalf("want MissingError, got %T: %v", err, err)
					}
				case "broken":
					if !errors.As(err, &be) {
						t.Fatalf("want BrokenError, got %T: %v", err, err)
					}
				case "external":
					if !errors.As(err, &ee) {
						t.Fatalf("want ExternalError, got %T: %v", err, err)
					}
				}
			}
			if got := len(tree.Problems()); got != tc.wantProblems {
				for _, e := range tree.Problems() {
					t.Logf("problem: %v", e)
				}
				t.Fatalf("Problems() = %d, want %d", got, tc.wantProblems)
			}
		})
	}
}

func TestOwnerAndFiles(t *testing.T) {
	files := map[string]string{
		"index.js":                               "x",
		"lib.js":                                 "x",
		"package.json":                           `{"name":"root","dependencies":{"a":"1"}}`,
		"node_modules/a/index.js":                "x",
		"node_modules/a/node_modules/b/index.js": "x",
		"node_modules/@org/c/index.js":           "x",
	}
	tree := Build(files)
	if got := len(tree.Packages); got != 4 {
		for _, p := range tree.Packages {
			t.Logf("pkg %q", p.Dir)
		}
		t.Fatalf("packages = %d, want 4", got)
	}
	if tree.Packages[0].Dir != "" {
		t.Fatalf("root must sort first, got %q", tree.Packages[0].Dir)
	}
	cases := map[string]string{
		"index.js":                               "",
		"lib.js":                                 "",
		"node_modules/a/index.js":                "node_modules/a",
		"node_modules/a/node_modules/b/index.js": "node_modules/a/node_modules/b",
		"node_modules/@org/c/index.js":           "node_modules/@org/c",
	}
	for rel, dir := range cases {
		p := tree.Owner(rel)
		if p == nil || p.Dir != dir {
			t.Fatalf("Owner(%q) = %v, want dir %q", rel, p, dir)
		}
	}
	root := tree.Root()
	if len(root.Files) != 2 {
		t.Fatalf("root files = %v, want [index.js lib.js]", root.Files)
	}
	a := tree.ByDir("node_modules/a")
	if len(a.Files) != 1 || a.Files[0] != "node_modules/a/index.js" {
		t.Fatalf("a files = %v", a.Files)
	}
	if c := tree.ByDir("node_modules/@org/c"); c == nil || c.Name != "@org/c" {
		t.Fatalf("scoped package name: %+v", c)
	}
}

func TestRootWithoutPackageJSON(t *testing.T) {
	tree := Build(map[string]string{"index.js": "x"})
	root := tree.Root()
	if root == nil || root.Err != nil {
		t.Fatalf("bare root must be usable: %+v", root)
	}
	if root.Main != "index.js" {
		t.Fatalf("root main = %q", root.Main)
	}
	if n := len(tree.Problems()); n != 0 {
		t.Fatalf("problems = %d", n)
	}
}

// TestResolveNeverEscapes drives every resolution through hostile
// inputs and asserts results stay inside the tree.
func TestResolveNeverEscapes(t *testing.T) {
	files := map[string]string{
		"index.js":                    "x",
		"node_modules/a/package.json": `{"name":"a","main":"../../../etc/passwd"}`,
		"node_modules/a/index.js":     "x",
	}
	tree := Build(files)
	for _, spec := range []string{"a", "a/../../x", "a/../../../etc/passwd", "../x", "/abs"} {
		got, err := tree.Resolve(tree.Root(), spec)
		if err != nil {
			continue
		}
		if _, ok := files[got]; !ok {
			t.Fatalf("Resolve(%q) = %q escapes the tree", spec, got)
		}
		if strings.HasPrefix(got, "..") || strings.HasPrefix(got, "/") {
			t.Fatalf("Resolve(%q) = %q is not tree-relative", spec, got)
		}
	}
}
