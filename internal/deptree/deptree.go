// Package deptree resolves node_modules-style dependency trees.
//
// A tree is a set of in-memory files (slash-separated relative paths)
// containing one root package plus any number of dependencies vendored
// under node_modules directories, possibly nested (npm's shadowing
// rules: the innermost node_modules that declares a package wins) and
// possibly scoped (@org/pkg). Build discovers every package directory,
// parses its package.json, and exposes Resolve — the npm-style bare
// specifier resolution the scanner's tree mode uses to link
// require('pkg') and require('pkg/sub') edges across package
// boundaries.
//
// The resolver never touches the filesystem and never escapes the
// tree: every candidate path is a cleaned relative path checked
// against the input file set, so a hostile package.json cannot direct
// resolution outside the files the caller handed in.
package deptree

import (
	"encoding/json"
	"fmt"
	"path"
	"sort"
	"strings"
)

// PackageJSON is the subset of package.json the resolver reads.
type PackageJSON struct {
	Name         string            `json:"name"`
	Version      string            `json:"version"`
	Main         string            `json:"main"`
	Dependencies map[string]string `json:"dependencies"`
}

// Package is one package directory in the tree.
type Package struct {
	// Name and Version come from package.json ("" when absent).
	Name    string
	Version string
	// Dir is the package directory relative to the tree root, "" for
	// the root package itself, "node_modules/a" for a direct
	// dependency, "node_modules/a/node_modules/b" for a nested one.
	Dir string
	// Main is the resolved entry-point file (relative to the tree
	// root), "" when the package has no resolvable entry.
	Main string
	// Files lists the package's .js files (relative to the tree root,
	// sorted), excluding files owned by nested node_modules packages.
	Files []string
	// Deps is the declared dependencies map from package.json.
	Deps map[string]string
	// Err is non-nil when the package directory is structurally broken
	// (unparseable package.json, missing entry point). Broken packages
	// still appear in the tree so Problems can report them.
	Err error
}

// Tree is a resolved dependency tree.
type Tree struct {
	// Files is the input file set (path → source).
	Files map[string]string
	// Packages lists every package directory: the root first, then
	// dependencies sorted by Dir.
	Packages []*Package

	byDir map[string]*Package
}

// MissingError reports a dependency declared in package.json with no
// node_modules directory anywhere on the resolution path.
type MissingError struct {
	From string // declaring package dir ("" = root)
	Spec string // the declared dependency name
}

func (e *MissingError) Error() string {
	return fmt.Sprintf("deptree: dependency %q declared by %q is not installed", e.Spec, fromDir(e.From))
}

// BrokenError reports a package directory that exists but cannot be
// used: its package.json does not parse, or its entry point is absent.
type BrokenError struct {
	Dir    string
	Reason string
}

func (e *BrokenError) Error() string {
	return fmt.Sprintf("deptree: package %q is broken: %s", e.Dir, e.Reason)
}

// ExternalError reports a bare specifier that is not declared and not
// installed anywhere — a Node builtin or a truly external module. It
// is not a tree problem: the scanner keeps such modules opaque exactly
// as single-package scans do.
type ExternalError struct {
	Spec string
}

func (e *ExternalError) Error() string {
	return fmt.Sprintf("deptree: %q is external to the tree", e.Spec)
}

func fromDir(dir string) string {
	if dir == "" {
		return "<root>"
	}
	return dir
}

// Build discovers every package in the file set and resolves each
// package's entry point and file ownership. It never returns an
// error: broken packages carry a non-nil Err, and Problems aggregates
// everything that would make a tree scan unsound.
func Build(files map[string]string) *Tree {
	t := &Tree{Files: files, byDir: map[string]*Package{}}

	// Every directory that directly contains a package.json — or is a
	// direct child (or scoped grandchild) of a node_modules directory
	// with .js files — is a package directory. The root package is the
	// tree root itself, package.json or not.
	dirs := map[string]bool{"": true}
	for rel := range files {
		rel = path.Clean(rel)
		if escapes(rel) {
			continue // hostile input path; not part of the tree
		}
		if path.Base(rel) == "package.json" {
			dirs[pkgDirOf(rel)] = true
			continue
		}
		// A package vendored without a package.json still owns its
		// directory: walk the path for node_modules components and
		// record each package dir they introduce.
		parts := strings.Split(rel, "/")
		for i, p := range parts[:len(parts)-1] {
			if p != "node_modules" {
				continue
			}
			if d := nodeModulesChild(parts, i); d != "" {
				dirs[d] = true
			}
		}
	}

	var pkgDirs []string
	for d := range dirs {
		pkgDirs = append(pkgDirs, d)
	}
	sort.Strings(pkgDirs)

	for _, d := range pkgDirs {
		t.addPackage(d)
	}

	// Assign each .js file to the innermost package directory that
	// prefixes it.
	var rels []string
	for rel := range files {
		rel = path.Clean(rel)
		if strings.HasSuffix(rel, ".js") && !escapes(rel) {
			rels = append(rels, rel)
		}
	}
	sort.Strings(rels)
	for _, rel := range rels {
		if p := t.Owner(rel); p != nil {
			p.Files = append(p.Files, rel)
		}
	}

	// Root first, then dependencies by dir.
	sort.Slice(t.Packages, func(i, j int) bool {
		a, b := t.Packages[i], t.Packages[j]
		if (a.Dir == "") != (b.Dir == "") {
			return a.Dir == ""
		}
		return a.Dir < b.Dir
	})
	return t
}

// nodeModulesChild returns the package dir introduced by the
// node_modules component at parts[i], honoring @scope/name two-level
// directories. Returns "" when the path is just node_modules/<file>.
func nodeModulesChild(parts []string, i int) string {
	// parts[i] == "node_modules"; the package dir is parts[:i+2]
	// joined, or parts[:i+3] for scoped packages.
	if i+1 >= len(parts)-1 {
		return "" // node_modules/<file> — not a package dir
	}
	name := parts[i+1]
	if strings.HasPrefix(name, "@") {
		if i+2 >= len(parts)-1 {
			return ""
		}
		return strings.Join(parts[:i+3], "/")
	}
	return strings.Join(parts[:i+2], "/")
}

// pkgDirOf maps a package.json path to its directory ("" for the tree
// root's own package.json).
func pkgDirOf(rel string) string {
	d := path.Dir(rel)
	if d == "." {
		return ""
	}
	return d
}

// addPackage parses dir's package.json and resolves its entry point.
func (t *Tree) addPackage(dir string) {
	p := &Package{Dir: dir}
	t.Packages = append(t.Packages, p)
	t.byDir[dir] = p

	pjPath := joinDir(dir, "package.json")
	if src, ok := t.Files[pjPath]; ok {
		var pj PackageJSON
		if err := json.Unmarshal([]byte(src), &pj); err != nil {
			p.Err = &BrokenError{Dir: fromDir(dir), Reason: fmt.Sprintf("package.json: %v", err)}
			deriveName(p)
			return
		}
		p.Name = pj.Name
		p.Version = pj.Version
		p.Deps = pj.Dependencies
		p.Main = t.resolveMain(dir, pj.Main)
		if p.Main == "" {
			p.Err = &BrokenError{Dir: fromDir(dir), Reason: entryReason(pj.Main)}
		}
		deriveName(p)
		return
	}
	// No package.json: npm-style index.js fallback. The tree root is
	// allowed to have neither (single-file trees); dependencies are
	// broken without an entry.
	p.Main = t.resolveMain(dir, "")
	if p.Main == "" && dir != "" {
		p.Err = &BrokenError{Dir: fromDir(dir), Reason: "no package.json and no index.js"}
	}
	deriveName(p)
}

// deriveName fills a missing package name from the directory layout
// (node_modules/@org/pkg → "@org/pkg").
func deriveName(p *Package) {
	if p.Name != "" || p.Dir == "" {
		return
	}
	p.Name = path.Base(p.Dir)
	if parent := path.Base(path.Dir(p.Dir)); strings.HasPrefix(parent, "@") {
		p.Name = parent + "/" + p.Name
	}
}

func entryReason(main string) string {
	if main == "" {
		return "no index.js entry point"
	}
	return fmt.Sprintf("main %q does not resolve", main)
}

// resolveMain resolves a package.json main field (or its absence) to a
// file in the tree, npm-style: main as-is, main+".js", main/index.js,
// falling back to index.js.
func (t *Tree) resolveMain(dir, main string) string {
	var cands []string
	if main != "" {
		m := path.Clean(main)
		if escapes(m) {
			return ""
		}
		cands = []string{m, m + ".js", m + "/index.js"}
	} else {
		cands = []string{"index.js"}
	}
	for _, c := range cands {
		rel := joinDir(dir, c)
		if escapesTree(rel) {
			continue
		}
		if _, ok := t.Files[rel]; ok && strings.HasSuffix(rel, ".js") {
			return rel
		}
	}
	return ""
}

// Root returns the tree's root package.
func (t *Tree) Root() *Package { return t.byDir[""] }

// ByDir returns the package at dir, nil when absent.
func (t *Tree) ByDir(dir string) *Package { return t.byDir[dir] }

// Owner returns the innermost package whose directory contains rel,
// nil for paths outside every package (cannot happen for cleaned
// relative paths, since the root owns everything not under a deeper
// package).
func (t *Tree) Owner(rel string) *Package {
	rel = path.Clean(rel)
	d := path.Dir(rel)
	if d == "." {
		d = ""
	}
	for {
		if p, ok := t.byDir[d]; ok {
			return p
		}
		if d == "" {
			return nil
		}
		d = path.Dir(d)
		if d == "." {
			d = ""
		}
	}
}

// Resolve resolves spec from the package from. Relative specifiers
// ("./x", "../x") resolve within from's directory tree exactly as the
// single-package scanner does and are not deptree's business — Resolve
// only handles bare specifiers ("pkg", "pkg/sub", "@org/pkg",
// "@org/pkg/sub"). The result is the entry file relative to the tree
// root.
//
// Resolution context is the *package* directory (not the requiring
// file's directory): all files of a package see the same dependency
// set, matching how the scanner builds one fragment per package.
//
// Error taxonomy: *ExternalError when the name is not installed
// anywhere on the path and not declared (a builtin like child_process,
// or a truly external module — kept opaque, not a failure);
// *MissingError when from declares the dependency but no node_modules
// provides it; *BrokenError when a directory is found but unusable.
func (t *Tree) Resolve(from *Package, spec string) (string, error) {
	name, sub, ok := splitSpec(spec)
	if !ok {
		return "", &ExternalError{Spec: spec}
	}

	// Walk up from the requiring package's dir looking for
	// node_modules/<name>, innermost first (npm shadowing).
	dir := from.Dir
	for {
		cand := joinDir(dir, "node_modules/"+name)
		if p, ok := t.byDir[cand]; ok {
			return t.entryOf(p, sub)
		}
		if dir == "" {
			break
		}
		// Pop one component; pop past an intervening node_modules
		// level too (node_modules/a → "" in one hop would skip the
		// root's own node_modules, so walk plain parent dirs).
		dir = parentDir(dir)
	}

	if _, declared := from.Deps[name]; declared {
		return "", &MissingError{From: from.Dir, Spec: name}
	}
	return "", &ExternalError{Spec: spec}
}

// entryOf resolves a found package to its entry file, honoring a
// subpath ("pkg/sub" → <pkgdir>/sub.js or <pkgdir>/sub/index.js).
func (t *Tree) entryOf(p *Package, sub string) (string, error) {
	if p.Err != nil {
		return "", p.Err
	}
	if sub == "" {
		if p.Main == "" {
			return "", &BrokenError{Dir: fromDir(p.Dir), Reason: "no entry point"}
		}
		return p.Main, nil
	}
	sub = path.Clean(sub)
	if escapes(sub) {
		return "", &BrokenError{Dir: fromDir(p.Dir), Reason: fmt.Sprintf("subpath %q escapes the package", sub)}
	}
	for _, c := range []string{sub, sub + ".js", sub + "/index.js"} {
		rel := joinDir(p.Dir, c)
		if escapesTree(rel) {
			continue
		}
		if _, ok := t.Files[rel]; ok && strings.HasSuffix(rel, ".js") {
			return rel, nil
		}
	}
	return "", &BrokenError{Dir: fromDir(p.Dir), Reason: fmt.Sprintf("subpath %q does not resolve", sub)}
}

// splitSpec splits a bare specifier into package name and subpath.
// Relative/absolute specifiers return ok=false (not deptree's job).
func splitSpec(spec string) (name, sub string, ok bool) {
	if spec == "" || strings.HasPrefix(spec, ".") || strings.HasPrefix(spec, "/") {
		return "", "", false
	}
	parts := strings.SplitN(spec, "/", 3)
	if strings.HasPrefix(spec, "@") {
		// @scope/name[/sub...]
		if len(parts) < 2 || parts[1] == "" {
			return "", "", false
		}
		name = parts[0] + "/" + parts[1]
		if len(parts) == 3 {
			sub = parts[2]
		}
	} else {
		name = parts[0]
		if len(parts) > 1 {
			sub = strings.Join(parts[1:], "/")
		}
	}
	if name == "" || strings.Contains(name, "..") {
		return "", "", false
	}
	return name, sub, true
}

// parentDir pops one path component, "" for top-level dirs.
func parentDir(dir string) string {
	d := path.Dir(dir)
	if d == "." {
		return ""
	}
	return d
}

func joinDir(dir, rel string) string {
	if dir == "" {
		return path.Clean(rel)
	}
	return path.Clean(dir + "/" + rel)
}

// escapes reports whether a cleaned package-relative path climbs out
// of its package directory.
func escapes(cleaned string) bool {
	return cleaned == ".." || strings.HasPrefix(cleaned, "../") || path.IsAbs(cleaned)
}

// escapesTree reports whether a cleaned tree-relative path climbs out
// of the tree root.
func escapesTree(rel string) bool {
	return escapes(path.Clean(rel))
}

// Problems statically audits the tree: every broken package, plus
// every declared dependency of every usable package that fails to
// resolve to a usable entry. External (undeclared, uninstalled) names
// are not problems. The result is deterministic (sorted by message).
func (t *Tree) Problems() []error {
	var errs []error
	for _, p := range t.Packages {
		if p.Err != nil {
			errs = append(errs, p.Err)
			continue
		}
		var names []string
		for name := range p.Deps {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if _, err := t.Resolve(p, name); err != nil {
				errs = append(errs, err)
			}
		}
	}
	sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
	// Dedupe: a broken package reachable from several dependents
	// reports once.
	out := errs[:0]
	var last string
	for _, e := range errs {
		if e.Error() == last {
			continue
		}
		last = e.Error()
		out = append(out, e)
	}
	return out
}
