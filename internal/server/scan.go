package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/budget"
	"repro/internal/scanner"
)

// maxBodyBytes bounds request bodies (source uploads included): 16 MiB
// is far beyond any real npm package main, and keeps a misbehaving
// client from ballooning the daemon's heap before the scan even runs.
const maxBodyBytes = 16 << 20

// handleScan is POST /v1/scan: decode, clamp knobs to the server's
// ceilings, admit through the worker pool, scan behind a panic fence,
// respond.
func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req ScanRequest
	if !decodeBody(w, r, &req) {
		return
	}
	files, name, errMsg := req.files()
	if errMsg != "" {
		writeError(w, http.StatusBadRequest, CodeBadRequest, errMsg)
		return
	}
	if req.Tree && req.Source != "" {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "tree scans require files (a package tree), not source")
		return
	}
	opts, eff, err := s.scanOptions(req.Engine, req.TimeoutMs, req.MaxSteps,
		req.MaxNodes, req.MaxEdges, req.NoReachGate)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	opts.Tree = req.Tree
	// Thread the request context into the scan's budget: a client that
	// disconnects or times out cancels its scan at the next budget
	// checkpoint, freeing the run slot for a client that is still
	// listening. Canceled results are classified, never cached.
	opts.Context = r.Context()

	// Offender breaker: content the daemon has repeatedly died on is
	// answered from the ledger instead of burning another run slot.
	hash := contentHash(files)
	if dec := s.offenders.admit(hash); dec.quarantined {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(dec.retryAfter.Seconds()+0.999)))
		writeError(w, http.StatusTooManyRequests, CodeQuarantined,
			fmt.Sprintf("content quarantined after repeated %s failures; retry later", dec.lastClass))
		return
	}
	// Engine breaker: while the native engine's rolling panic rate is
	// tripped, native-first requests run the fallback engine instead.
	if pinnedEng, pinned := s.engines.pin(opts.Engine); pinned {
		opts.Engine = pinnedEng
		eff.Engine = string(pinnedEng)
		eff.EnginePinned = true
	}

	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()

	// The scanner's phases are individually Guard-fenced, but the
	// handler fences the whole call too: a panic in glue code must
	// become a structured 500, never a dead daemon.
	var rep *scanner.Report
	gerr := budget.Guard("serve-scan", func() error {
		if testHookScanning != nil {
			testHookScanning(name, r.Context())
		}
		st := s.state(name, req.Cold)
		eff.Warm = st != nil
		opts.Incremental = st
		rep = scanner.ScanFiles(files, name, opts)
		return nil
	})
	s.scans.Add(1)
	// A request that asked for less than the server's default timeout
	// can time out on innocent content; only full-allowance timeouts
	// strike the offender ledger.
	strikeEligible := !(req.TimeoutMs > 0 &&
		time.Duration(req.TimeoutMs)*time.Millisecond < s.opts.DefaultTimeout)
	if gerr != nil {
		s.offenders.record(hash, budget.ClassOf(gerr), strikeEligible)
		s.recordFailure(budget.ClassPanic)
		s.observeHealth()
		writeError(w, http.StatusInternalServerError, CodeInternal,
			fmt.Sprintf("scan %s: %v", name, gerr))
		return
	}
	s.offenders.record(hash, rep.Failure, strikeEligible)
	if ran, panicked := nativeOutcome(opts.Engine, rep); ran {
		s.engines.record(panicked)
	}
	s.recordFailure(rep.Failure)
	s.observeHealth()
	if rep.Failure == budget.ClassCanceled {
		// Nobody is reading this body, but the status line makes the
		// outcome visible in access logs and to tests.
		s.canceled.Add(1)
		writeError(w, StatusClientClosedRequest, CodeCanceled,
			fmt.Sprintf("scan %s canceled by client disconnect", name))
		return
	}
	writeJSON(w, http.StatusOK, scanResponse(rep, eff))
}

// contentHash fingerprints a request's exact file set for the offender
// ledger: same rel paths, same bytes → same hash, regardless of the
// package name the client chose.
func contentHash(files []scanner.SourceFile) string {
	h := sha256.New()
	for _, f := range files {
		fmt.Fprintf(h, "%d %s\x00%d ", len(f.Rel), f.Rel, len(f.Src))
		io.WriteString(h, f.Src)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// files normalizes the request's source/files forms into the sorted
// SourceFile set ScanFiles expects, returning a non-empty errMsg on an
// invalid combination.
func (r *ScanRequest) files() (files []scanner.SourceFile, name string, errMsg string) {
	name = r.Name
	if name == "" {
		name = "inline"
	}
	switch {
	case r.Source != "" && len(r.Files) > 0:
		return nil, "", "source and files are mutually exclusive"
	case r.Source != "":
		return []scanner.SourceFile{{Rel: "index.js", Src: r.Source}}, name, ""
	case len(r.Files) > 0:
		seen := map[string]bool{}
		for _, f := range r.Files {
			if f.Rel == "" {
				return nil, "", "every file needs a rel path"
			}
			if seen[f.Rel] {
				return nil, "", fmt.Sprintf("duplicate file %q", f.Rel)
			}
			seen[f.Rel] = true
			files = append(files, scanner.SourceFile{Rel: f.Rel, Src: f.Src})
		}
		// ScanFiles requires sorted Rel order (require resolution and
		// site allocation depend on file order).
		sort.Slice(files, func(i, j int) bool { return files[i].Rel < files[j].Rel })
		return files, name, ""
	default:
		return nil, "", "one of source or files is required"
	}
}

// scanOptions clamps per-request knobs to the server's ceilings and
// returns the scanner options plus the effective values echoed in the
// response. An unknown engine name is a 400-level error.
func (s *Server) scanOptions(engine string, timeoutMs, steps, nodes, edges int,
	noReachGate bool) (scanner.Options, EffectiveJSON, error) {

	o := s.opts
	eng := o.Engine
	if engine != "" {
		parsed, err := scanner.ParseEngine(engine)
		if err != nil {
			return scanner.Options{}, EffectiveJSON{}, err
		}
		eng = parsed
	}
	timeout := o.DefaultTimeout
	if timeoutMs > 0 {
		timeout = time.Duration(timeoutMs) * time.Millisecond
		if timeout > o.MaxTimeout {
			timeout = o.MaxTimeout
		}
	}
	clamp := func(req, def, max int) int {
		v := def
		if req > 0 {
			v = req
		}
		if max > 0 && (v <= 0 || v > max) {
			v = max
		}
		return v
	}
	opts := scanner.Options{
		Config:      o.Config,
		Engine:      eng,
		Timeout:     timeout,
		MaxSteps:    clamp(steps, o.DefaultSteps, o.MaxSteps),
		MaxNodes:    clamp(nodes, o.DefaultNodes, o.MaxNodes),
		MaxEdges:    clamp(edges, o.DefaultEdges, o.MaxEdges),
		NoReachGate: noReachGate,
	}
	eff := EffectiveJSON{
		Engine:    string(eng),
		TimeoutMs: int(timeout / time.Millisecond),
		MaxSteps:  opts.MaxSteps,
		MaxNodes:  opts.MaxNodes,
		MaxEdges:  opts.MaxEdges,
	}
	return opts, eff, nil
}

// scanResponse renders a scan report onto the wire.
func scanResponse(rep *scanner.Report, eff EffectiveJSON) ScanResponse {
	resp := ScanResponse{
		ReportJSON:     ReportToJSON(rep),
		Engine:         string(rep.Engine),
		Effective:      eff,
		ExhaustedPhase: rep.ExhaustedPhase,
		Incremental:    incrStatsJSON(rep.IncrStats),
		Truncated:      rep.TruncatedSearches,
		Stats: ScanStatsJSON{
			LoC: rep.LoC, MDGNodes: rep.MDGNodes, MDGEdges: rep.MDGEdges,
			GraphMs:    float64(rep.GraphTime.Microseconds()) / 1000,
			DetectMs:   float64(rep.QueryTime.Microseconds()) / 1000,
			FuncsTotal: rep.FuncsTotal, FuncsPruned: rep.FuncsPruned,
			SkippedByReach: rep.SkippedByReach, ExportCount: rep.ExportCount,
			ReachFallback: rep.ReachFallback, ProvenanceDepth: rep.ProvenanceDepth,
			TreePackages: rep.TreePackages, TreeDepth: rep.TreeDepth,
		},
	}
	if rep.Err != nil {
		resp.ScanError = rep.Err.Error()
	}
	if rep.FallbackErr != nil {
		resp.FallbackErr = rep.FallbackErr.Error()
	}
	for _, ph := range rep.Phases {
		resp.Phases = append(resp.Phases, PhaseJSON{
			Phase: ph.Phase, Steps: ph.Steps, Nodes: ph.Nodes, Edges: ph.Edges,
			Ms: float64(ph.Dur.Microseconds()) / 1000,
		})
	}
	return resp
}

// decodeBody decodes a JSON request body with a size bound and strict
// field checking (an unknown knob is a client bug worth failing, not
// silently ignoring), answering 400 — or a structured 413 when the
// body exceeds the size bound — itself on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, CodePayloadTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("decode body: %v", err))
		return false
	}
	return true
}
