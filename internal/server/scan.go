package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/budget"
	"repro/internal/scanner"
)

// maxBodyBytes bounds request bodies (source uploads included): 16 MiB
// is far beyond any real npm package main, and keeps a misbehaving
// client from ballooning the daemon's heap before the scan even runs.
const maxBodyBytes = 16 << 20

// handleScan is POST /v1/scan: decode, clamp knobs to the server's
// ceilings, admit through the worker pool, scan behind a panic fence,
// respond.
func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req ScanRequest
	if !decodeBody(w, r, &req) {
		return
	}
	files, name, errMsg := req.files()
	if errMsg != "" {
		writeError(w, http.StatusBadRequest, CodeBadRequest, errMsg)
		return
	}
	if req.Tree && req.Source != "" {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "tree scans require files (a package tree), not source")
		return
	}
	opts, eff, err := s.scanOptions(req.Engine, req.TimeoutMs, req.MaxSteps,
		req.MaxNodes, req.MaxEdges, req.NoReachGate)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	opts.Tree = req.Tree

	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()

	// The scanner's phases are individually Guard-fenced, but the
	// handler fences the whole call too: a panic in glue code must
	// become a structured 500, never a dead daemon.
	var rep *scanner.Report
	gerr := budget.Guard("serve-scan", func() error {
		if testHookScanning != nil {
			testHookScanning(name)
		}
		st := s.state(name, req.Cold)
		eff.Warm = st != nil
		opts.Incremental = st
		rep = scanner.ScanFiles(files, name, opts)
		return nil
	})
	s.scans.Add(1)
	if gerr != nil {
		s.recordFailure(budget.ClassPanic)
		writeError(w, http.StatusInternalServerError, CodeInternal,
			fmt.Sprintf("scan %s: %v", name, gerr))
		return
	}
	s.recordFailure(rep.Failure)
	writeJSON(w, http.StatusOK, scanResponse(rep, eff))
}

// files normalizes the request's source/files forms into the sorted
// SourceFile set ScanFiles expects, returning a non-empty errMsg on an
// invalid combination.
func (r *ScanRequest) files() (files []scanner.SourceFile, name string, errMsg string) {
	name = r.Name
	if name == "" {
		name = "inline"
	}
	switch {
	case r.Source != "" && len(r.Files) > 0:
		return nil, "", "source and files are mutually exclusive"
	case r.Source != "":
		return []scanner.SourceFile{{Rel: "index.js", Src: r.Source}}, name, ""
	case len(r.Files) > 0:
		seen := map[string]bool{}
		for _, f := range r.Files {
			if f.Rel == "" {
				return nil, "", "every file needs a rel path"
			}
			if seen[f.Rel] {
				return nil, "", fmt.Sprintf("duplicate file %q", f.Rel)
			}
			seen[f.Rel] = true
			files = append(files, scanner.SourceFile{Rel: f.Rel, Src: f.Src})
		}
		// ScanFiles requires sorted Rel order (require resolution and
		// site allocation depend on file order).
		sort.Slice(files, func(i, j int) bool { return files[i].Rel < files[j].Rel })
		return files, name, ""
	default:
		return nil, "", "one of source or files is required"
	}
}

// scanOptions clamps per-request knobs to the server's ceilings and
// returns the scanner options plus the effective values echoed in the
// response. An unknown engine name is a 400-level error.
func (s *Server) scanOptions(engine string, timeoutMs, steps, nodes, edges int,
	noReachGate bool) (scanner.Options, EffectiveJSON, error) {

	o := s.opts
	eng := o.Engine
	if engine != "" {
		parsed, err := scanner.ParseEngine(engine)
		if err != nil {
			return scanner.Options{}, EffectiveJSON{}, err
		}
		eng = parsed
	}
	timeout := o.DefaultTimeout
	if timeoutMs > 0 {
		timeout = time.Duration(timeoutMs) * time.Millisecond
		if timeout > o.MaxTimeout {
			timeout = o.MaxTimeout
		}
	}
	clamp := func(req, def, max int) int {
		v := def
		if req > 0 {
			v = req
		}
		if max > 0 && (v <= 0 || v > max) {
			v = max
		}
		return v
	}
	opts := scanner.Options{
		Config:      o.Config,
		Engine:      eng,
		Timeout:     timeout,
		MaxSteps:    clamp(steps, o.DefaultSteps, o.MaxSteps),
		MaxNodes:    clamp(nodes, o.DefaultNodes, o.MaxNodes),
		MaxEdges:    clamp(edges, o.DefaultEdges, o.MaxEdges),
		NoReachGate: noReachGate,
	}
	eff := EffectiveJSON{
		Engine:    string(eng),
		TimeoutMs: int(timeout / time.Millisecond),
		MaxSteps:  opts.MaxSteps,
		MaxNodes:  opts.MaxNodes,
		MaxEdges:  opts.MaxEdges,
	}
	return opts, eff, nil
}

// scanResponse renders a scan report onto the wire.
func scanResponse(rep *scanner.Report, eff EffectiveJSON) ScanResponse {
	resp := ScanResponse{
		ReportJSON:     ReportToJSON(rep),
		Engine:         string(rep.Engine),
		Effective:      eff,
		ExhaustedPhase: rep.ExhaustedPhase,
		Incremental:    incrStatsJSON(rep.IncrStats),
		Truncated:      rep.TruncatedSearches,
		Stats: ScanStatsJSON{
			LoC: rep.LoC, MDGNodes: rep.MDGNodes, MDGEdges: rep.MDGEdges,
			GraphMs:    float64(rep.GraphTime.Microseconds()) / 1000,
			DetectMs:   float64(rep.QueryTime.Microseconds()) / 1000,
			FuncsTotal: rep.FuncsTotal, FuncsPruned: rep.FuncsPruned,
			SkippedByReach: rep.SkippedByReach, ExportCount: rep.ExportCount,
			ReachFallback: rep.ReachFallback, ProvenanceDepth: rep.ProvenanceDepth,
			TreePackages: rep.TreePackages, TreeDepth: rep.TreeDepth,
		},
	}
	if rep.Err != nil {
		resp.ScanError = rep.Err.Error()
	}
	if rep.FallbackErr != nil {
		resp.FallbackErr = rep.FallbackErr.Error()
	}
	for _, ph := range rep.Phases {
		resp.Phases = append(resp.Phases, PhaseJSON{
			Phase: ph.Phase, Steps: ph.Steps, Nodes: ph.Nodes, Edges: ph.Edges,
			Ms: float64(ph.Dur.Microseconds()) / 1000,
		})
	}
	return resp
}

// decodeBody decodes a JSON request body with a size bound and strict
// field checking (an unknown knob is a client bug worth failing, not
// silently ignoring), answering 400 itself on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("decode body: %v", err))
		return false
	}
	return true
}
