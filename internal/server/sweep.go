package server

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/budget"
	"repro/internal/metrics"
	"repro/internal/scanner"
)

// handleSweep is POST /v1/sweep: enumerate the corpus directory's
// targets, then drive them through the supervised retry/degradation
// ladder (internal/metrics supervisor) — journal-backed and resumable
// when the request names a journal. The whole sweep runs under one
// admission token; its internal worker pool is the server's Workers,
// so a sweep temporarily owns the pool width it was admitted into
// (documented in docs/OPERATIONS.md).
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req SweepRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Path == "" {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "path is required")
		return
	}
	if req.Resume && req.Journal == "" {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "resume requires a journal")
		return
	}
	if req.CompactJournal {
		if req.Journal == "" {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "compactJournal requires a journal")
			return
		}
		if s.opts.Store == nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				"compactJournal requires a daemon started with -cache-dir")
			return
		}
	}
	opts, _, err := s.scanOptions(req.Engine, req.TimeoutMs, req.MaxSteps,
		req.MaxNodes, req.MaxEdges, req.NoReachGate)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	targets, err := sweepTargets(req.Path, s.sweepState(req.Cold))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	if len(targets) == 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("no scan targets under %s", req.Path))
		return
	}

	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()

	// A sweep can legitimately outlive any server-level WriteTimeout;
	// lift the connection's write deadline for this response instead of
	// weakening the timeout for every other route.
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})

	opts.Workers = s.opts.Workers
	// A disconnected sweep client cancels the whole ladder: each
	// in-flight target finishes as canceled (journaled retryable, so a
	// resume re-scans it) and no further targets start.
	opts.Context = r.Context()
	start := time.Now()
	var sw *metrics.Sweep
	var stats *metrics.SuperviseStats
	gerr := budget.Guard("serve-sweep", func() error {
		var serr error
		sw, stats, serr = metrics.SuperviseGraphJSTargets(targets, opts, metrics.SuperviseOptions{
			JournalPath:    req.Journal,
			Resume:         req.Resume,
			Requarantine:   req.Requarantine,
			Store:          s.opts.Store,
			CompactJournal: req.CompactJournal,
			NoFsync:        s.opts.NoFsync,
		})
		return serr
	})
	s.sweeps.Add(1)
	if gerr != nil {
		s.recordFailure(budget.ClassOf(gerr))
		writeError(w, http.StatusInternalServerError, CodeInternal,
			fmt.Sprintf("sweep %s: %v", req.Path, gerr))
		return
	}

	resp := SweepResponse{
		Path:        req.Path,
		Targets:     len(targets),
		Completed:   stats.Completed,
		Degraded:    stats.Degraded,
		Quarantined: stats.Quarantined,
		Canceled:    stats.Canceled,
		Resumed:     stats.Resumed,
		Torn:        stats.Torn,
		WallMs:      float64(time.Since(start).Microseconds()) / 1000,
		Entries:     stats.Entries,
	}
	for i := range sw.Results {
		s.recordFailure(sw.Results[i].Failure)
		resp.Findings += len(sw.Results[i].Findings)
	}
	s.observeHealth()
	writeJSON(w, http.StatusOK, resp)
}

// sweepState resolves the warm-state pool a sweep's scans draw from
// (nil disables incremental reuse for the sweep; degraded mode forces
// cold sweeps like it forces cold scans).
func (s *Server) sweepState(cold bool) *scanner.StatePool {
	if cold || s.degraded() {
		return nil
	}
	return s.pool
}

// sweepTargets enumerates a corpus directory the way the graphjs CLI
// treats its arguments: every immediate child directory is one package
// target, every immediate *.js child (minus .min.js) one file target,
// in sorted name order. Each target hashes its current on-disk content
// for journal resume and scans with the pool's warm state when pool is
// non-nil.
func sweepTargets(dir string, pool *scanner.StatePool) ([]metrics.Target, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("sweep path: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, ".") {
			continue
		}
		if !e.IsDir() && (!strings.HasSuffix(name, ".js") || strings.HasSuffix(name, ".min.js")) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)

	targets := make([]metrics.Target, 0, len(names))
	for _, name := range names {
		path := filepath.Join(dir, name)
		targets = append(targets, metrics.Target{
			Name: name,
			Hash: func() string { return metrics.HashTarget(path) },
			Scan: func(o scanner.Options) *scanner.Report {
				if pool != nil {
					o.Incremental = pool.Get(path)
				}
				return scanTargetPath(path, o)
			},
		})
	}
	return targets, nil
}

// scanTargetPath scans one filesystem target (file or package dir).
func scanTargetPath(path string, opts scanner.Options) *scanner.Report {
	info, err := os.Stat(path)
	if err != nil {
		return &scanner.Report{Name: path, Err: err}
	}
	if info.IsDir() {
		return scanner.ScanPackage(path, opts)
	}
	return scanner.ScanFile(path, opts)
}

// handleStatus is GET /v1/status.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, s.status())
}

// handleMetrics is GET /v1/metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	resp := MetricsResponse{StatusResponse: s.status(), Failures: map[string]int64{}}
	s.mu.Lock()
	for k, v := range s.failures {
		resp.Failures[k] = v
	}
	s.mu.Unlock()
	_, _, resp.HealthTransitions = s.healthSnapshot()
	s.offenders.snapshot(&resp.Breakers)
	s.engines.snapshot(&resp.Breakers)
	if s.pool != nil {
		ps := s.pool.Stats()
		resp.StatePool = IncrStatsJSON{
			FrontEndHits: ps.FrontEndHits, FrontEndMisses: ps.FrontEndMisses,
			FragmentHits: ps.FragmentHits, FragmentRebuilds: ps.Rebuilds(),
			DetectHits: ps.DetectHits, DetectMisses: ps.DetectMisses,
			EvictedFiles: ps.EvictedFiles, EvictedFragments: ps.EvictedFragments,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// status assembles the shared status snapshot.
func (s *Server) status() StatusResponse {
	s.observeHealth()
	health, healthReason, _ := s.healthSnapshot()
	running := len(s.slots)
	admitted := len(s.queue)
	queued := admitted - running
	if queued < 0 {
		queued = 0
	}
	st := StatusResponse{
		UptimeMs:     float64(time.Since(s.start).Microseconds()) / 1000,
		Workers:      cap(s.slots),
		Running:      running,
		Queued:       queued,
		Draining:     s.Draining(),
		Health:       health,
		HealthReason: healthReason,
		Scans:        s.scans.Load(),
		Sweeps:       s.sweeps.Load(),
		Rejected:     s.rejected.Load(),
		Canceled:     s.canceled.Load(),
	}
	if s.pool != nil {
		st.StatePackages = s.pool.Len()
		st.StateEvictedStates, st.StateEvictedBytes = s.pool.Evictions()
	}
	if s.opts.Store != nil {
		ss := s.opts.Store.Stats()
		st.Store = &StoreJSON{
			Dir: s.opts.Store.Dir(), ReadOnly: s.opts.Store.ReadOnly(),
			Entries: ss.Entries, Bytes: ss.Bytes,
			Puts: ss.Puts, Gets: ss.Gets, Hits: ss.Hits,
			Quarantined: ss.Quarantined, TruncatedBytes: ss.TruncatedBytes,
			WriteErrors: ss.WriteErrors, Compactions: ss.Compactions,
		}
	}
	return st
}
