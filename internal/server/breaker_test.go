package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/scanner"
)

// fakeClock is an injectable time source for breaker cooldown tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func TestOffenderLedgerLifecycle(t *testing.T) {
	clk := newFakeClock()
	l := newOffenderLedger(2, time.Minute)
	l.now = clk.now

	// First strike: tracked but admitted.
	l.record("h", budget.ClassPanic, true)
	if d := l.admit("h"); d.quarantined {
		t.Fatal("one strike below threshold quarantined the hash")
	}
	// Second strike trips the breaker.
	l.record("h", budget.ClassPanic, true)
	d := l.admit("h")
	if !d.quarantined || d.retryAfter <= 0 {
		t.Fatalf("tripped hash admitted: %+v", d)
	}
	// Cooldown elapsed: exactly one half-open probe goes through, a
	// concurrent request is still shed.
	clk.advance(61 * time.Second)
	if d := l.admit("h"); !d.probe {
		t.Fatalf("post-cooldown request is not the probe: %+v", d)
	}
	if d := l.admit("h"); !d.quarantined {
		t.Fatalf("second request during probe admitted: %+v", d)
	}
	// Failed probe re-opens for another full cooldown.
	l.record("h", budget.ClassPanic, true)
	if d := l.admit("h"); !d.quarantined {
		t.Fatalf("failed probe did not re-open: %+v", d)
	}
	// Next probe succeeds: the hash is forgiven entirely.
	clk.advance(61 * time.Second)
	if d := l.admit("h"); !d.probe {
		t.Fatal("no probe after second cooldown")
	}
	l.record("h", budget.ClassNone, true)
	if d := l.admit("h"); d.quarantined || d.probe {
		t.Fatalf("recovered hash still restricted: %+v", d)
	}
	var bj BreakersJSON
	l.snapshot(&bj)
	if bj.OffenderRecovered != 1 || bj.OffenderTrips != 2 || bj.OffenderShed < 2 {
		t.Fatalf("counters = %+v", bj)
	}
}

func TestOffenderLedgerStrikeEligibility(t *testing.T) {
	l := newOffenderLedger(1, time.Minute)
	l.now = newFakeClock().now

	// A timeout under a client-shortened allowance is not an offense.
	l.record("h", budget.ClassTimeout, false)
	if d := l.admit("h"); d.quarantined {
		t.Fatal("ineligible timeout struck the ledger")
	}
	// Deterministic verdicts (parse errors etc.) never strike — and a
	// clean outcome wipes prior strikes.
	l.record("h", budget.ClassParse, true)
	if d := l.admit("h"); d.quarantined {
		t.Fatal("parse failure struck the ledger")
	}
	// Cancellation is the client's death, not the content's fault.
	l.record("h", budget.ClassCanceled, true)
	if d := l.admit("h"); d.quarantined {
		t.Fatal("cancellation struck the ledger")
	}
	// A full-allowance timeout does strike (threshold 1 → quarantined).
	l.record("h", budget.ClassTimeout, true)
	if d := l.admit("h"); !d.quarantined {
		t.Fatal("eligible timeout did not strike")
	}
}

func TestOffenderLedgerBounded(t *testing.T) {
	clk := newFakeClock()
	l := newOffenderLedger(3, time.Minute)
	l.now = clk.now
	l.maxEntries = 8
	for i := 0; i < 50; i++ {
		clk.advance(time.Second)
		l.record(fmt.Sprintf("h%d", i), budget.ClassPanic, true)
	}
	if len(l.entries) > 8 {
		t.Fatalf("ledger grew to %d entries, bound is 8", len(l.entries))
	}
	// The most recent offenders survive eviction.
	if l.entries["h49"] == nil {
		t.Fatal("newest entry was evicted instead of the oldest")
	}
}

func TestEngineBreakerWindow(t *testing.T) {
	eb := newEngineBreaker(4, 0.5)
	eb.record(true)
	if _, pinned := eb.pin(scanner.EngineNative); pinned {
		t.Fatal("pinned below minSamples")
	}
	eb.record(true) // rate 1.0 over 2 samples >= minSamples 2
	if eng, pinned := eb.pin(scanner.EngineNative); !pinned || eng != scanner.EngineFallback {
		t.Fatalf("native not pinned to fallback: %v %v", eng, pinned)
	}
	if eng, pinned := eb.pin(scanner.EngineDifferential); !pinned || eng != scanner.EngineFallback {
		t.Fatalf("differential not pinned to fallback: %v %v", eng, pinned)
	}
	// The query engine never ran native; it is left alone.
	if eng, pinned := eb.pin(scanner.EngineQuery); pinned || eng != scanner.EngineQuery {
		t.Fatalf("query engine rewritten: %v %v", eng, pinned)
	}
	// Clean samples wash the panics out of the window and un-pin.
	eb.record(false)
	eb.record(false) // window [t t f f] rate 0.5 — still pinned
	if _, pinned := eb.pin(scanner.EngineNative); !pinned {
		t.Fatal("un-pinned while rate still at threshold")
	}
	eb.record(false) // overwrites a panic: rate 0.25 → closed
	if _, pinned := eb.pin(scanner.EngineNative); pinned {
		t.Fatal("still pinned after rate dropped below threshold")
	}
	var bj BreakersJSON
	eb.snapshot(&bj)
	if bj.EnginePins != 1 || bj.EngineUnpins != 1 {
		t.Fatalf("pin transitions = %+v", bj)
	}
}

// End-to-end offender flow over HTTP: repeated engine panics on the
// same content quarantine its hash (429 + Retry-After + quarantined
// code), a half-open probe after the cooldown recovers it, and the
// whole journey is visible in /v1/metrics.
func TestOffenderQuarantineHTTP(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, BreakerStrikes: 2, BreakerCooldown: time.Hour})
	clk := newFakeClock()
	s.offenders.now = clk.now

	budget.SetFaultPlan(&budget.FaultPlan{
		Seed: 7, PanicProb: 1, Spread: 1,
		Arm: func(label string) bool { return label == "bomb" },
	})
	defer budget.SetFaultPlan(nil)

	req := ScanRequest{Name: "bomb", Source: "module.exports = function (x) { return x; };"}
	for i := 0; i < 2; i++ {
		resp := decodeResp[ScanResponse](t, postJSON(t, ts.URL+"/v1/scan", req), http.StatusOK)
		if resp.Failure != string(budget.ClassPanic) {
			t.Fatalf("strike %d: failure %q, want panic", i, resp.Failure)
		}
	}

	// Third request: quarantined without burning a slot.
	raw := postJSON(t, ts.URL+"/v1/scan", req)
	if raw.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("quarantined status %d, want 429", raw.StatusCode)
	}
	if raw.Header.Get("Retry-After") == "" {
		t.Fatal("quarantined response missing Retry-After")
	}
	var e ErrorJSON
	if err := json.NewDecoder(raw.Body).Decode(&e); err != nil {
		t.Fatalf("decode 429: %v", err)
	}
	raw.Body.Close()
	if e.Error.Code != CodeQuarantined {
		t.Fatalf("code %q, want %q", e.Error.Code, CodeQuarantined)
	}

	// Different content is unaffected by the quarantine.
	other := decodeResp[ScanResponse](t, postJSON(t, ts.URL+"/v1/scan",
		ScanRequest{Name: "innocent", Source: "module.exports = 1;"}), http.StatusOK)
	if other.Failure != "" {
		t.Fatalf("innocent content failed: %q", other.Failure)
	}

	// Cooldown over and the content "fixed": the probe recovers it.
	clk.advance(time.Hour + time.Minute)
	budget.SetFaultPlan(nil)
	probe := decodeResp[ScanResponse](t, postJSON(t, ts.URL+"/v1/scan", req), http.StatusOK)
	if probe.Failure != "" {
		t.Fatalf("probe failed: %q", probe.Failure)
	}
	after := decodeResp[ScanResponse](t, postJSON(t, ts.URL+"/v1/scan", req), http.StatusOK)
	if after.Failure != "" {
		t.Fatalf("post-recovery scan failed: %q", after.Failure)
	}

	m := decodeResp[MetricsResponse](t, getURL(t, ts.URL+"/v1/metrics"), http.StatusOK)
	if m.Breakers.OffenderTrips < 1 || m.Breakers.OffenderShed < 1 || m.Breakers.OffenderRecovered != 1 {
		t.Fatalf("breaker metrics = %+v", m.Breakers)
	}
}

// End-to-end engine-breaker flow: native panics push the rolling rate
// over the threshold, subsequent native requests are pinned to the
// fallback engine (advertised via effective.enginePinned), and clean
// traffic closes the breaker again.
func TestEngineBreakerPinsFallbackHTTP(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Workers: 1, Engine: scanner.EngineNative,
		EngineBreakWindow: 4, EngineBreakRate: 0.5,
	})

	budget.SetFaultPlan(&budget.FaultPlan{
		Seed: 11, PanicProb: 1, Spread: 1,
		Arm: func(label string) bool { return label == "eb" },
	})

	req := ScanRequest{Name: "eb", Source: "module.exports = function (x) { return x; };"}
	for i := 0; i < 2; i++ {
		resp := decodeResp[ScanResponse](t, postJSON(t, ts.URL+"/v1/scan", req), http.StatusOK)
		if resp.Failure != string(budget.ClassPanic) {
			t.Fatalf("sample %d: failure %q, want panic", i, resp.Failure)
		}
	}

	// Breaker open: the same request now runs pinned to fallback.
	budget.SetFaultPlan(nil)
	pinned := decodeResp[ScanResponse](t, postJSON(t, ts.URL+"/v1/scan", req), http.StatusOK)
	if !pinned.Effective.EnginePinned || pinned.Effective.Engine != string(scanner.EngineFallback) {
		t.Fatalf("effective = %+v, want pinned fallback", pinned.Effective)
	}
	m := decodeResp[MetricsResponse](t, getURL(t, ts.URL+"/v1/metrics"), http.StatusOK)
	if !m.Breakers.EnginePinned || m.Breakers.EnginePins != 1 {
		t.Fatalf("breaker metrics = %+v", m.Breakers)
	}

	// Clean native outcomes (fallback runs native first) wash the
	// window; the breaker closes on its own — the built-in half-open.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := decodeResp[ScanResponse](t, postJSON(t, ts.URL+"/v1/scan", req), http.StatusOK)
		if !resp.Effective.EnginePinned {
			if resp.Effective.Engine != string(scanner.EngineNative) {
				t.Fatalf("unpinned engine = %q, want native", resp.Effective.Engine)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never closed under clean traffic")
		}
	}
	m = decodeResp[MetricsResponse](t, getURL(t, ts.URL+"/v1/metrics"), http.StatusOK)
	if m.Breakers.EnginePinned || m.Breakers.EngineUnpins != 1 {
		t.Fatalf("post-recovery metrics = %+v", m.Breakers)
	}
}
