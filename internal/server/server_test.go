package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/queries"
	"repro/internal/scanner"
	"repro/internal/sweepjournal"
)

// newTestServer builds a Server and an httptest listener around it.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func decodeResp[T any](t *testing.T, resp *http.Response, want int) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if resp.StatusCode != want {
		var e ErrorJSON
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("status %d, want %d (error %q: %s)", resp.StatusCode, want, e.Error.Code, e.Error.Message)
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return v
}

// packageRequest renders a dataset package as the scan request the
// daemon's clients would send: single-file packages as inline source,
// multi-file ones as a file-set upload.
func packageRequest(p *dataset.Package) ScanRequest {
	if len(p.Extra) == 0 {
		return ScanRequest{Name: p.Name, Source: p.Source}
	}
	req := ScanRequest{Name: p.Name, Files: []SourceFileJSON{{Rel: "index.js", Src: p.Source}}}
	for rel, src := range p.Extra {
		req.Files = append(req.Files, SourceFileJSON{Rel: rel, Src: src})
	}
	return req
}

// encodeReport renders a report the way the graphjs CLI -json path
// does, so the comparison below is byte-for-byte against CLI output.
func encodeReport(rj ReportJSON) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rj)
	return buf.Bytes()
}

// TestConcurrentScanMatchesSequential drives the full ground-truth
// corpus through the daemon concurrently and checks every response's
// report rendering is byte-identical to a sequential direct scan
// rendered by the same encoder the CLI uses.
func TestConcurrentScanMatchesSequential(t *testing.T) {
	vulcan, secbench := dataset.GroundTruth(7)
	pkgs := append(append([]*dataset.Package{}, vulcan.Packages...), secbench.Packages...)
	if testing.Short() {
		short := pkgs[:0]
		for i := 0; i < len(pkgs); i += 10 {
			short = append(short, pkgs[i])
		}
		pkgs = short
	}

	_, ts := newTestServer(t, Options{Workers: 4, QueueDepth: 2 * len(pkgs)})

	// Sequential reference: the exact scan the server performs, cold,
	// rendered with the CLI's encoder.
	seqOpts := scanner.Options{
		Config:  queries.DefaultConfig(),
		Engine:  scanner.EngineQuery,
		Timeout: 5 * time.Minute,
	}
	want := make([][]byte, len(pkgs))
	for i, p := range pkgs {
		req := packageRequest(p)
		files, name, errMsg := req.files()
		if errMsg != "" {
			t.Fatalf("%s: %s", p.Name, errMsg)
		}
		want[i] = encodeReport(ReportToJSON(scanner.ScanFiles(files, name, seqOpts)))
	}

	got := make([][]byte, len(pkgs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for i, p := range pkgs {
		wg.Add(1)
		go func(i int, p *dataset.Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			resp := postJSON(t, ts.URL+"/v1/scan", packageRequest(p))
			sr := decodeResp[ScanResponse](t, resp, http.StatusOK)
			got[i] = encodeReport(sr.ReportJSON)
		}(i, p)
	}
	wg.Wait()

	mismatches := 0
	for i := range pkgs {
		if !bytes.Equal(got[i], want[i]) {
			mismatches++
			if mismatches <= 3 {
				t.Errorf("%s: server response diverged from sequential CLI rendering\nserver: %s\ncli:    %s",
					pkgs[i].Name, got[i], want[i])
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d/%d packages diverged", mismatches, len(pkgs))
	}
}

// TestAdmissionShedding saturates a Workers=1, zero-queue server and
// checks the next request is shed with 429 + Retry-After and the
// overloaded error code, then admitted again once the slot frees.
func TestAdmissionShedding(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: -1, RetryAfter: 3 * time.Second})

	started := make(chan string, 1)
	release := make(chan struct{})
	testHookScanning = func(name string, _ context.Context) {
		started <- name
		<-release
	}
	defer func() { testHookScanning = nil }()

	req := ScanRequest{Name: "pinned", Source: "module.exports = function(x){ return x }\n"}
	firstDone := make(chan *http.Response, 1)
	go func() {
		firstDone <- postJSON(t, ts.URL+"/v1/scan", req)
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("first scan never started")
	}
	// Worker pinned: the pool (1 slot, 0 queue) is saturated.
	testHookScanning = nil
	resp := postJSON(t, ts.URL+"/v1/scan", ScanRequest{Source: "1\n"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated scan: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}
	var e ErrorJSON
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error.Code != CodeOverloaded {
		t.Fatalf("error envelope = %+v (err %v), want code %q", e, err, CodeOverloaded)
	}
	resp.Body.Close()

	close(release)
	first := <-firstDone
	if first.StatusCode != http.StatusOK {
		t.Fatalf("pinned scan: status %d, want 200", first.StatusCode)
	}
	first.Body.Close()

	// The freed slot admits again, and /v1/status counted the shed.
	resp = postJSON(t, ts.URL+"/v1/scan", ScanRequest{Source: "1\n"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release scan: status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	st, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatalf("GET status: %v", err)
	}
	status := decodeResp[StatusResponse](t, st, http.StatusOK)
	if status.Rejected != 1 || status.Scans != 2 {
		t.Fatalf("status = %+v, want Rejected=1 Scans=2", status)
	}
}

// TestWarmResubmit re-submits an edited package under the same name and
// checks the second scan draws from the warm fragment cache.
func TestWarmResubmit(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	// index.js and lib.js are independent require-components, so an
	// edit to index must rebuild only index's fragment and reuse lib's.
	lib := "module.exports = function run(cmd){ require('child_process').exec(cmd) }\n"
	mk := func(index string) ScanRequest {
		return ScanRequest{Name: "warmpkg", Files: []SourceFileJSON{
			{Rel: "index.js", Src: index},
			{Rel: "lib.js", Src: lib},
		}}
	}

	first := decodeResp[ScanResponse](t,
		postJSON(t, ts.URL+"/v1/scan", mk("module.exports.id = function(x){ return x }\n")), http.StatusOK)
	if !first.Effective.Warm {
		t.Fatal("first scan not warm — StatePool disabled?")
	}
	if first.Incremental == nil || first.Incremental.FragmentHits != 0 {
		t.Fatalf("first scan incremental = %+v, want zero fragment hits", first.Incremental)
	}

	// Edit only index.js: lib.js's fragment must come from the cache
	// (the counters are cumulative over the package's warm state).
	second := decodeResp[ScanResponse](t,
		postJSON(t, ts.URL+"/v1/scan", mk("module.exports.id = function(x){ return x + 1 }\n")), http.StatusOK)
	if second.Incremental == nil {
		t.Fatal("second scan reported no incremental stats")
	}
	if second.Incremental.FrontEndHits == 0 || second.Incremental.FragmentHits == 0 {
		t.Fatalf("warm resubmit missed the cache: %+v", second.Incremental)
	}
	if len(second.Findings) != len(first.Findings) {
		t.Fatalf("warm resubmit changed findings: %d vs %d", len(second.Findings), len(first.Findings))
	}

	// cold=true must bypass the pool entirely.
	cold := decodeResp[ScanResponse](t,
		postJSON(t, ts.URL+"/v1/scan", func() ScanRequest { r := mk("module.exports.id = function(x){ return x }\n"); r.Cold = true; return r }()), http.StatusOK)
	if cold.Effective.Warm || cold.Incremental != nil {
		t.Fatalf("cold scan still warm: warm=%v incr=%+v", cold.Effective.Warm, cold.Incremental)
	}
}

// TestDrainLeavesReplayableJournal sweeps a small corpus with a
// journal, drains the server, and checks (a) post-drain requests get
// 503, (b) the journal replays cleanly, and (c) a fresh server resumes
// every target from it without re-scanning.
func TestDrainLeavesReplayableJournal(t *testing.T) {
	corpus := t.TempDir()
	vuln := "module.exports = function(c){ require('child_process').exec(c) }\n"
	for _, f := range []string{"a.js", "b.js"} {
		if err := os.WriteFile(filepath.Join(corpus, f), []byte(vuln), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(corpus, "pkg"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(corpus, "pkg", "index.js"), []byte(vuln), 0o644); err != nil {
		t.Fatal(err)
	}
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")

	opts := Options{Workers: 2}
	srv, ts := newTestServer(t, opts)
	sweepReq := SweepRequest{Path: corpus, Journal: journal}
	sw := decodeResp[SweepResponse](t, postJSON(t, ts.URL+"/v1/sweep", sweepReq), http.StatusOK)
	if sw.Targets != 3 || sw.Completed != 3 || sw.Findings == 0 {
		t.Fatalf("sweep = %+v, want 3 targets completed with findings", sw)
	}

	srv.Drain()
	if !srv.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	resp := postJSON(t, ts.URL+"/v1/scan", ScanRequest{Source: "1\n"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain scan: status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	entries, torn, err := sweepjournal.Load(journal)
	if err != nil {
		t.Fatalf("replay journal: %v", err)
	}
	if torn || len(entries) != 3 {
		t.Fatalf("journal torn=%v entries=%d, want clean 3", torn, len(entries))
	}
	for name, e := range entries {
		if e.State != sweepjournal.StateComplete {
			t.Fatalf("journal entry %s state %q, want complete", name, e.State)
		}
	}

	// A fresh daemon (same config) resumes every target.
	_, ts2 := newTestServer(t, opts)
	sweepReq.Resume = true
	sw2 := decodeResp[SweepResponse](t, postJSON(t, ts2.URL+"/v1/sweep", sweepReq), http.StatusOK)
	if sw2.Resumed != 3 {
		t.Fatalf("resumed sweep = %+v, want all 3 resumed", sw2)
	}
}

// TestDrainWaitsForInflight pins a scan mid-flight, drains
// concurrently, and checks Drain blocks until the scan finishes while
// new arrivals get 503.
func TestDrainWaitsForInflight(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2})

	started := make(chan string, 1)
	release := make(chan struct{})
	testHookScanning = func(name string, _ context.Context) {
		started <- name
		<-release
	}
	defer func() { testHookScanning = nil }()

	scanDone := make(chan *http.Response, 1)
	go func() {
		scanDone <- postJSON(t, ts.URL+"/v1/scan", ScanRequest{Source: "module.exports = 1\n"})
	}()
	<-started
	testHookScanning = nil

	drained := make(chan struct{})
	go func() { srv.Drain(); close(drained) }()
	// Draining flips promptly even with the scan still pinned.
	deadline := time.After(10 * time.Second)
	for !srv.Draining() {
		select {
		case <-deadline:
			t.Fatal("Draining never became true")
		case <-time.After(time.Millisecond):
		}
	}
	select {
	case <-drained:
		t.Fatal("Drain returned while a scan was in flight")
	case <-time.After(50 * time.Millisecond):
	}
	resp := postJSON(t, ts.URL+"/v1/scan", ScanRequest{Source: "1\n"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mid-drain scan: status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	close(release)
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain never returned after the scan finished")
	}
	first := <-scanDone
	if first.StatusCode != http.StatusOK {
		t.Fatalf("in-flight scan: status %d, want 200", first.StatusCode)
	}
	first.Body.Close()
}

// TestRequestValidation covers the 400/404/405 surfaces of the API.
func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	cases := []struct {
		name string
		req  func() *http.Response
		code string
		want int
	}{
		{"empty body", func() *http.Response {
			return postJSON(t, ts.URL+"/v1/scan", ScanRequest{})
		}, CodeBadRequest, 400},
		{"source and files", func() *http.Response {
			return postJSON(t, ts.URL+"/v1/scan", ScanRequest{Source: "1", Files: []SourceFileJSON{{Rel: "a.js"}}})
		}, CodeBadRequest, 400},
		{"duplicate rel", func() *http.Response {
			return postJSON(t, ts.URL+"/v1/scan", ScanRequest{Files: []SourceFileJSON{{Rel: "a.js"}, {Rel: "a.js"}}})
		}, CodeBadRequest, 400},
		{"unknown engine", func() *http.Response {
			return postJSON(t, ts.URL+"/v1/scan", ScanRequest{Source: "1", Engine: "nope"})
		}, CodeBadRequest, 400},
		{"unknown field", func() *http.Response {
			resp, err := http.Post(ts.URL+"/v1/scan", "application/json",
				bytes.NewReader([]byte(`{"source":"1","bogus":true}`)))
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, CodeBadRequest, 400},
		{"scan via GET", func() *http.Response {
			resp, err := http.Get(ts.URL + "/v1/scan")
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, CodeMethod, 405},
		{"sweep without path", func() *http.Response {
			return postJSON(t, ts.URL+"/v1/sweep", SweepRequest{})
		}, CodeBadRequest, 400},
		{"resume without journal", func() *http.Response {
			return postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Path: ".", Resume: true})
		}, CodeBadRequest, 400},
	}
	for _, tc := range cases {
		resp := tc.req()
		var e ErrorJSON
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("%s: decode error envelope: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want || e.Error.Code != tc.code {
			t.Errorf("%s: got %d/%q, want %d/%q (%s)",
				tc.name, resp.StatusCode, e.Error.Code, tc.want, tc.code, e.Error.Message)
		}
	}
}

// TestBudgetClamping checks per-request knobs are honored below the
// ceilings and clamped above them.
func TestBudgetClamping(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Workers:        1,
		DefaultTimeout: 2 * time.Second,
		MaxTimeout:     10 * time.Second,
		MaxSteps:       50000,
		MaxNodes:       40000,
	})

	src := "module.exports = function(x){ return x }\n"
	within := decodeResp[ScanResponse](t,
		postJSON(t, ts.URL+"/v1/scan", ScanRequest{Source: src, TimeoutMs: 5000, MaxSteps: 1000}), http.StatusOK)
	if within.Effective.TimeoutMs != 5000 || within.Effective.MaxSteps != 1000 {
		t.Fatalf("within-ceiling effective = %+v, want timeout 5000ms steps 1000", within.Effective)
	}
	if within.Effective.MaxNodes != 40000 {
		t.Fatalf("unset node cap should default to ceiling, got %d", within.Effective.MaxNodes)
	}

	above := decodeResp[ScanResponse](t,
		postJSON(t, ts.URL+"/v1/scan", ScanRequest{Source: src, TimeoutMs: 60000, MaxSteps: 999999999}), http.StatusOK)
	if above.Effective.TimeoutMs != 10000 || above.Effective.MaxSteps != 50000 {
		t.Fatalf("above-ceiling effective = %+v, want clamped to 10000ms/50000 steps", above.Effective)
	}

	def := decodeResp[ScanResponse](t,
		postJSON(t, ts.URL+"/v1/scan", ScanRequest{Source: src}), http.StatusOK)
	if def.Effective.TimeoutMs != 2000 {
		t.Fatalf("default effective = %+v, want 2000ms", def.Effective)
	}
}

// TestPanicFence checks a handler-level panic comes back as a
// structured 500 and the daemon keeps serving.
func TestPanicFence(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	testHookScanning = func(name string, _ context.Context) {
		if name == "boom" {
			panic(fmt.Sprintf("injected fault in %s", name))
		}
	}
	defer func() { testHookScanning = nil }()

	resp := postJSON(t, ts.URL+"/v1/scan", ScanRequest{Name: "boom", Source: "1\n"})
	var e ErrorJSON
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("decode 500 envelope: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError || e.Error.Code != CodeInternal {
		t.Fatalf("panicking scan: got %d/%q, want 500/internal", resp.StatusCode, e.Error.Code)
	}

	ok := postJSON(t, ts.URL+"/v1/scan", ScanRequest{Name: "fine", Source: "module.exports = 1\n"})
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("daemon died after panic: status %d", ok.StatusCode)
	}
	ok.Body.Close()
}
