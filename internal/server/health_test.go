package server

import (
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/budget"
)

// The three-state health machine over HTTP: healthy servers answer ok
// on both probes, Drain flips readiness (and only readiness) off, and
// every edge is countable in /v1/metrics.
func TestHealthzReadyzLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})

	h := decodeResp[HealthResponse](t, getURL(t, ts.URL+"/healthz"), http.StatusOK)
	if h.Status != "ok" || h.Health != HealthHealthy {
		t.Fatalf("fresh healthz = %+v", h)
	}
	r := decodeResp[ReadyResponse](t, getURL(t, ts.URL+"/readyz"), http.StatusOK)
	if !r.Ready || r.Health != HealthHealthy {
		t.Fatalf("fresh readyz = %+v", r)
	}

	s.Drain()

	// Liveness stays up — a draining daemon must not be killed by its
	// orchestrator — while readiness goes 503 so balancers route away.
	h = decodeResp[HealthResponse](t, getURL(t, ts.URL+"/healthz"), http.StatusOK)
	if h.Status != "ok" || h.Health != HealthDraining {
		t.Fatalf("draining healthz = %+v", h)
	}
	raw := getURL(t, ts.URL+"/readyz")
	if raw.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz status %d, want 503", raw.StatusCode)
	}
	r = decodeResp[ReadyResponse](t, raw, http.StatusServiceUnavailable)
	if r.Ready || r.Health != HealthDraining || r.Reason == "" {
		t.Fatalf("draining readyz = %+v", r)
	}

	m := decodeResp[MetricsResponse](t, getURL(t, ts.URL+"/v1/metrics"), http.StatusOK)
	if m.HealthTransitions["healthy->draining"] != 1 {
		t.Fatalf("transitions = %+v", m.HealthTransitions)
	}
}

// A failing disk under the persistent store degrades the daemon: it
// keeps answering, but cold (warm state bypassed), advertises the state
// everywhere, and heals itself once the cooldown passes without fresh
// faults.
func TestStoreWriteFaultDegradesThenHeals(t *testing.T) {
	st := openServerStore(t, filepath.Join(t.TempDir(), "cache"))
	s, ts := newTestServer(t, Options{Workers: 1, Store: st, DegradedCooldown: time.Hour})
	clk := newFakeClock()
	s.now = clk.now

	// First write into the store hits a simulated ENOSPC/short write.
	budget.SetFaultPlan(&budget.FaultPlan{
		Seed: 3, DiskProb: 1, Spread: 1,
		Arm: func(label string) bool { return label == "store" },
	})
	req := ScanRequest{Name: "dsk", Source: "module.exports = function(c){ require('child_process').exec(c) }\n"}
	first := decodeResp[ScanResponse](t, postJSON(t, ts.URL+"/v1/scan", req), http.StatusOK)
	budget.SetFaultPlan(nil)
	// The faulted write is a cache loss, not a scan failure.
	if first.Failure != "" || first.ScanError != "" {
		t.Fatalf("store fault failed the scan: %+v", first.ReportJSON)
	}

	status := decodeResp[StatusResponse](t, getURL(t, ts.URL+"/v1/status"), http.StatusOK)
	if status.Health != HealthDegraded || status.HealthReason == "" {
		t.Fatalf("status after store fault = %q (%q), want degraded", status.Health, status.HealthReason)
	}
	r := decodeResp[ReadyResponse](t, getURL(t, ts.URL+"/readyz"), http.StatusOK)
	if !r.Ready || r.Health != HealthDegraded {
		t.Fatalf("degraded readyz = %+v (degraded must stay ready)", r)
	}

	// Degraded mode serves cold scans: no warm state attached even
	// though the pool holds this package from the first scan.
	cold := decodeResp[ScanResponse](t, postJSON(t, ts.URL+"/v1/scan", req), http.StatusOK)
	if cold.Effective.Warm {
		t.Fatal("degraded scan ran warm")
	}
	if len(cold.Findings) != len(first.Findings) {
		t.Fatalf("degraded scan changed findings: %d vs %d", len(cold.Findings), len(first.Findings))
	}

	// Cooldown elapses with no fresh fault signal: the machine heals and
	// warm state comes back.
	clk.advance(time.Hour + time.Minute)
	status = decodeResp[StatusResponse](t, getURL(t, ts.URL+"/v1/status"), http.StatusOK)
	if status.Health != HealthHealthy {
		t.Fatalf("status after cooldown = %q, want healthy", status.Health)
	}
	warm := decodeResp[ScanResponse](t, postJSON(t, ts.URL+"/v1/scan", req), http.StatusOK)
	if !warm.Effective.Warm {
		t.Fatal("healed scan did not run warm")
	}

	m := decodeResp[MetricsResponse](t, getURL(t, ts.URL+"/v1/metrics"), http.StatusOK)
	if m.HealthTransitions["healthy->degraded"] != 1 || m.HealthTransitions["degraded->healthy"] != 1 {
		t.Fatalf("transitions = %+v", m.HealthTransitions)
	}
}

// The warm-state pool evicting under its byte ceiling is a memory-
// pressure signal: the daemon degrades (cold scans shed the pressure)
// rather than thrashing the pool.
func TestPoolEvictionDegrades(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, StateMaxBytes: 1, DegradedCooldown: time.Hour})
	clk := newFakeClock()
	s.now = clk.now

	// The pool never evicts the state it is handing out, so pressure
	// needs a second package: fetching b's state evicts a's.
	src := "module.exports = function(x){ return x }\n"
	decodeResp[ScanResponse](t, postJSON(t, ts.URL+"/v1/scan",
		ScanRequest{Name: "evict-a", Source: src}), http.StatusOK)
	decodeResp[ScanResponse](t, postJSON(t, ts.URL+"/v1/scan",
		ScanRequest{Name: "evict-b", Source: src}), http.StatusOK)

	status := decodeResp[StatusResponse](t, getURL(t, ts.URL+"/v1/status"), http.StatusOK)
	if status.Health != HealthDegraded {
		t.Fatalf("status after forced eviction = %q (%q), want degraded",
			status.Health, status.HealthReason)
	}
}
