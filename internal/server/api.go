package server

import (
	"repro/internal/scanner"
	"repro/internal/sweepjournal"
)

// This file defines the wire types of the graphjsd HTTP/JSON API.
// Every shape here is documented (with examples) in docs/API.md; the
// curl examples there are replayed against a live test server by
// TestAPIDocCurlExamples, so the doc and these structs cannot drift
// apart silently. cmd/graphjs reuses FindingJSON/ReportJSON for its
// -json output, which is what makes the CLI and the daemon
// byte-identical on the same scan.

// FindingJSON is the wire rendering of one queries.Finding: the sink
// identity plus the call-path provenance the reach gate attached
// (entry export, hop chain, and whether the every-function fallback
// attack model was in effect).
type FindingJSON struct {
	CWE    string `json:"cwe"`
	Sink   string `json:"sink"`
	File   string `json:"file,omitempty"`
	Line   int    `json:"line"`
	Source string `json:"source"`
	// Call-path provenance: the API entry (or fallback marker) and the
	// hop chain from it down to the sink's function.
	Entry    string   `json:"entry,omitempty"`
	Hops     []string `json:"hops,omitempty"`
	Fallback bool     `json:"reachFallback,omitempty"`
	// DepPath is the dependency-tree package chain the call path
	// crosses (tree scans only): root package first, each hop labeled
	// "name@version (node_modules dir)".
	DepPath []string `json:"depPath,omitempty"`
}

// ReportJSON is the wire rendering of a scan outcome shared by the
// graphjs CLI (-json) and the daemon's /v1/scan response: name,
// failure taxonomy, and the findings list.
type ReportJSON struct {
	Name       string        `json:"name"`
	TimedOut   bool          `json:"timedOut"`
	Failure    string        `json:"failure,omitempty"`
	Incomplete bool          `json:"incomplete,omitempty"`
	FellBack   bool          `json:"fellBack,omitempty"`
	Findings   []FindingJSON `json:"findings"`
}

// ReportToJSON flattens a scanner report into its wire rendering.
func ReportToJSON(rep *scanner.Report) ReportJSON {
	out := ReportJSON{
		Name: rep.Name, TimedOut: rep.TimedOut, Failure: string(rep.Failure),
		Incomplete: rep.Incomplete, FellBack: rep.FellBack, Findings: []FindingJSON{},
	}
	for _, f := range rep.Findings {
		out.Findings = append(out.Findings, FindingJSON{
			CWE: string(f.CWE), Sink: f.SinkName, File: f.SinkFile,
			Line: f.SinkLine, Source: f.Source,
			Entry: f.Provenance.Entry, Hops: f.Provenance.Hops,
			Fallback: f.Provenance.Fallback, DepPath: f.Provenance.DepPath,
		})
	}
	return out
}

// SourceFileJSON is one file of an uploaded package file set. Rel is
// the package-relative path used for require('./x') resolution.
type SourceFileJSON struct {
	Rel string `json:"rel"`
	Src string `json:"src"`
}

// ScanRequest is the body of POST /v1/scan: either Source (one inline
// file) or Files (a package file set), plus per-request engine and
// budget knobs. Every knob is optional; zero values mean the server's
// defaults, and requested budgets are clamped to the server's
// ceilings (the response records the effective values).
type ScanRequest struct {
	// Name identifies the logical package. Re-submissions under the
	// same name share warm incremental state (the process-wide
	// StatePool), so an edited package re-analyzes only the changed
	// require-components. Empty means an anonymous one-shot scan with
	// no warm state.
	Name string `json:"name,omitempty"`
	// Source is a single inline JavaScript source text. Mutually
	// exclusive with Files.
	Source string `json:"source,omitempty"`
	// Files is a package file set; it is scanned as one multi-module
	// package (require('./sibling') flows connect across files).
	Files []SourceFileJSON `json:"files,omitempty"`

	// Engine selects the detection backend (query, native,
	// differential, fallback; "" = the server default).
	Engine string `json:"engine,omitempty"`
	// TimeoutMs requests a wall-clock budget in milliseconds, clamped
	// to the server's ceiling (0 = server default).
	TimeoutMs int `json:"timeoutMs,omitempty"`
	// MaxSteps/MaxNodes/MaxEdges request cooperative step and MDG size
	// caps, clamped to the server's ceilings (0 = server default).
	MaxSteps int `json:"maxSteps,omitempty"`
	MaxNodes int `json:"maxNodes,omitempty"`
	MaxEdges int `json:"maxEdges,omitempty"`
	// NoReachGate disables the export-graph reachability skip gate for
	// this request (the gate still runs for provenance).
	NoReachGate bool `json:"noReachGate,omitempty"`
	// Cold forces a stateless scan even when Name is set: the warm
	// incremental state is neither consulted nor updated.
	Cold bool `json:"cold,omitempty"`
	// Tree scans Files as a dependency tree: node_modules packages are
	// resolved, analyzed as separate MDG fragments, stitched, and
	// cross-package require flows are linked. Include package.json
	// manifests in Files — the resolver reads them. Requires Files
	// (not Source). With Name set, per-package fragments stay warm, so
	// re-submitting the tree after editing one dependency re-analyzes
	// only that package.
	Tree bool `json:"tree,omitempty"`
}

// PhaseJSON is one per-phase budget-usage row of a scan response.
type PhaseJSON struct {
	Phase string  `json:"phase"`
	Steps int     `json:"steps"`
	Nodes int     `json:"nodes"`
	Edges int     `json:"edges"`
	Ms    float64 `json:"ms"`
}

// IncrStatsJSON mirrors scanner.IncrementalStats on the wire: the
// warm-state cache traffic of the request's StatePool entry.
type IncrStatsJSON struct {
	FrontEndHits     int `json:"frontEndHits"`
	FrontEndMisses   int `json:"frontEndMisses"`
	FragmentHits     int `json:"fragmentHits"`
	FragmentRebuilds int `json:"fragmentRebuilds"`
	DetectHits       int `json:"detectHits"`
	DetectMisses     int `json:"detectMisses"`
	EvictedFiles     int `json:"evictedFiles"`
	EvictedFragments int `json:"evictedFragments"`
	// Persistent-store traffic (zero unless the daemon runs with
	// -cache-dir): decoded cache hits served from disk, misses, records
	// written, and the degrade-to-cold counters — entries quarantined
	// as undecodable and writes that failed (both are speed loss only,
	// never finding loss).
	StoreHits        int `json:"storeHits,omitempty"`
	StoreMisses      int `json:"storeMisses,omitempty"`
	StorePuts        int `json:"storePuts,omitempty"`
	StoreQuarantined int `json:"storeQuarantined,omitempty"`
	StoreErrors      int `json:"storeErrors,omitempty"`
}

func incrStatsJSON(s *scanner.IncrementalStats) *IncrStatsJSON {
	if s == nil {
		return nil
	}
	return &IncrStatsJSON{
		FrontEndHits: s.FrontEndHits, FrontEndMisses: s.FrontEndMisses,
		FragmentHits: s.FragmentHits, FragmentRebuilds: s.Rebuilds(),
		DetectHits: s.DetectHits, DetectMisses: s.DetectMisses,
		EvictedFiles: s.EvictedFiles, EvictedFragments: s.EvictedFragments,
		StoreHits: s.StoreHits, StoreMisses: s.StoreMisses, StorePuts: s.StorePuts,
		StoreQuarantined: s.StoreQuarantined, StoreErrors: s.StoreErrors,
	}
}

// ScanStatsJSON is the size/timing block of a scan response.
type ScanStatsJSON struct {
	LoC      int     `json:"loc"`
	MDGNodes int     `json:"mdgNodes"`
	MDGEdges int     `json:"mdgEdges"`
	GraphMs  float64 `json:"graphMs"`
	DetectMs float64 `json:"detectMs"`
	// Export-graph gate counters.
	FuncsTotal      int  `json:"funcsTotal"`
	FuncsPruned     int  `json:"funcsPruned"`
	SkippedByReach  bool `json:"skippedByReach,omitempty"`
	ExportCount     int  `json:"exportCount"`
	ReachFallback   bool `json:"reachFallback,omitempty"`
	ProvenanceDepth int  `json:"provenanceDepth,omitempty"`
	// Dependency-tree shape (tree scans only): resolved package count
	// and deepest node_modules nesting level.
	TreePackages int `json:"treePackages,omitempty"`
	TreeDepth    int `json:"treeDepth,omitempty"`
}

// EffectiveJSON records the budget/engine values the scan actually ran
// under, after server-side clamping to the configured ceilings.
type EffectiveJSON struct {
	Engine    string `json:"engine"`
	TimeoutMs int    `json:"timeoutMs"`
	MaxSteps  int    `json:"maxSteps,omitempty"`
	MaxNodes  int    `json:"maxNodes,omitempty"`
	MaxEdges  int    `json:"maxEdges,omitempty"`
	// Warm reports whether the scan used (and updated) the shared
	// incremental StatePool.
	Warm bool `json:"warm"`
	// EnginePinned reports that the engine-level circuit breaker
	// overrode the requested native/differential engine with fallback
	// because the native engine's rolling panic rate tripped it.
	EnginePinned bool `json:"enginePinned,omitempty"`
}

// ScanResponse is the body of a successful POST /v1/scan: the shared
// report rendering plus phase accounting, size stats, the effective
// (clamped) knobs, and the warm-state counters when the scan was
// incremental.
type ScanResponse struct {
	ReportJSON
	Engine         string         `json:"engine"`
	Effective      EffectiveJSON  `json:"effective"`
	Stats          ScanStatsJSON  `json:"stats"`
	Phases         []PhaseJSON    `json:"phases,omitempty"`
	ExhaustedPhase string         `json:"exhaustedPhase,omitempty"`
	Incremental    *IncrStatsJSON `json:"incremental,omitempty"`
	Truncated      int            `json:"truncatedSearches,omitempty"`
	ScanError      string         `json:"scanError,omitempty"`
	FallbackErr    string         `json:"fallbackErr,omitempty"`
}

// SweepRequest is the body of POST /v1/sweep: a corpus directory on
// the server's filesystem whose immediate children (package
// directories and .js files) become sweep targets, driven through the
// supervised retry/degradation ladder, optionally journal-backed.
type SweepRequest struct {
	// Path is the corpus directory on the server's disk.
	Path string `json:"path"`
	// Journal, when non-empty, appends per-target terminal outcomes to
	// this JSONL file (created if absent; a torn tail is repaired).
	Journal string `json:"journal,omitempty"`
	// Resume skips targets whose journal entry matches their current
	// content hash and options fingerprint.
	Resume bool `json:"resume,omitempty"`
	// Requarantine re-scans quarantined targets on resume.
	Requarantine bool `json:"requarantine,omitempty"`
	// CompactJournal folds the journal's live entries into the daemon's
	// persistent store and truncates the JSONL log after the sweep
	// finishes. Requires Journal and a daemon started with -cache-dir.
	CompactJournal bool `json:"compactJournal,omitempty"`

	// Engine and budget knobs, clamped exactly like ScanRequest's.
	Engine      string `json:"engine,omitempty"`
	TimeoutMs   int    `json:"timeoutMs,omitempty"`
	MaxSteps    int    `json:"maxSteps,omitempty"`
	MaxNodes    int    `json:"maxNodes,omitempty"`
	MaxEdges    int    `json:"maxEdges,omitempty"`
	NoReachGate bool   `json:"noReachGate,omitempty"`
	// Cold disables warm incremental state for the sweep's scans.
	Cold bool `json:"cold,omitempty"`
}

// SweepResponse is the body of a successful POST /v1/sweep.
type SweepResponse struct {
	Path    string `json:"path"`
	Targets int    `json:"targets"`
	// Terminal-state tallies (see internal/sweepjournal). Canceled
	// counts targets abandoned because the request context died
	// mid-sweep; their journal entries are retryable (a resumed sweep
	// re-scans them).
	Completed   int     `json:"completed"`
	Degraded    int     `json:"degraded"`
	Quarantined int     `json:"quarantined"`
	Canceled    int     `json:"canceled,omitempty"`
	Resumed     int     `json:"resumed"`
	Torn        bool    `json:"torn,omitempty"`
	Findings    int     `json:"findings"`
	WallMs      float64 `json:"wallMs"`
	// Entries holds each target's terminal journal entry in target
	// order (resumed targets keep their prior entry).
	Entries []sweepjournal.Entry `json:"entries"`
}

// StatusResponse is the body of GET /v1/status: a liveness snapshot of
// the worker pool and warm state.
type StatusResponse struct {
	UptimeMs float64 `json:"uptimeMs"`
	Workers  int     `json:"workers"`
	// Running is the number of scans currently holding a worker slot;
	// Queued counts admitted requests waiting for one. Their sum is
	// bounded by Workers+QueueDepth — anything beyond is shed with 429.
	Running  int  `json:"running"`
	Queued   int  `json:"queued"`
	Draining bool `json:"draining"`
	// Health is the server's explicit state-machine state: "healthy",
	// "degraded" (cold scans only — the store reported corruption or
	// write errors, or the StatePool hit its byte ceiling), or
	// "draining". HealthReason names the signal that forced the last
	// degraded transition.
	Health       string `json:"health"`
	HealthReason string `json:"healthReason,omitempty"`
	// Scans/Sweeps/Rejected are lifetime request counters. Canceled
	// counts requests whose client disconnected before their scan
	// finished (answered 499; the freed slot re-admits waiting work).
	Scans    int64 `json:"scans"`
	Sweeps   int64 `json:"sweeps"`
	Rejected int64 `json:"rejected"`
	Canceled int64 `json:"canceled"`
	// StatePackages is the number of packages with warm incremental
	// state resident in the process-wide StatePool.
	StatePackages int `json:"statePackages"`
	// StateEvictedStates/StateEvictedBytes count LRU evictions from the
	// StatePool since start (non-zero only when -state-max-entries or
	// -state-max-bytes bounds the pool).
	StateEvictedStates int64 `json:"stateEvictedStates"`
	StateEvictedBytes  int64 `json:"stateEvictedBytes"`
	// Store is the persistent on-disk cache snapshot; absent unless the
	// daemon was started with -cache-dir.
	Store *StoreJSON `json:"store,omitempty"`
}

// StoreJSON is the wire snapshot of the persistent store backing
// -cache-dir (see internal/store.Stats).
type StoreJSON struct {
	Dir      string `json:"dir"`
	ReadOnly bool   `json:"readOnly,omitempty"`
	// Entries/Bytes describe the live index; Bytes is the log size on
	// disk including superseded records (compaction reclaims it).
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Lifetime traffic counters for this process.
	Puts int64 `json:"puts"`
	Gets int64 `json:"gets"`
	Hits int64 `json:"hits"`
	// Quarantined counts records dropped for failing CRC or decode
	// checks; TruncatedBytes counts torn-tail bytes repaired at open.
	// Both degrade the affected keys to cold — findings never change.
	Quarantined    int64 `json:"quarantined"`
	TruncatedBytes int64 `json:"truncatedBytes"`
	WriteErrors    int64 `json:"writeErrors"`
	Compactions    int64 `json:"compactions"`
}

// MetricsResponse is the body of GET /v1/metrics: everything in
// StatusResponse plus failure-class counts and the StatePool's
// aggregate hit/miss/rebuild counters.
type MetricsResponse struct {
	StatusResponse
	// Failures counts terminal scan outcomes per failure class; the
	// "ok" key counts clean scans.
	Failures map[string]int64 `json:"failures"`
	// StatePool aggregates the incremental counters over every
	// package's warm state.
	StatePool IncrStatsJSON `json:"statePool"`
	// HealthTransitions counts state-machine transitions since start,
	// keyed "from->to" (e.g. "healthy->degraded").
	HealthTransitions map[string]int64 `json:"healthTransitions"`
	// Breakers snapshots the per-content-hash offender ledger and the
	// engine-level circuit breaker.
	Breakers BreakersJSON `json:"breakers"`
}

// BreakersJSON is the circuit-breaker snapshot in /v1/metrics.
type BreakersJSON struct {
	// Offender ledger: content hashes currently tracked, hashes
	// currently quarantined (open), lifetime quarantine trips, requests
	// shed with the cached quarantined verdict, and hashes recovered
	// through a half-open probe.
	OffenderTracked   int   `json:"offenderTracked"`
	OffenderOpen      int   `json:"offenderOpen"`
	OffenderTrips     int64 `json:"offenderTrips"`
	OffenderShed      int64 `json:"offenderShed"`
	OffenderRecovered int64 `json:"offenderRecovered"`
	// Engine breaker: whether the fallback engine is currently pinned,
	// the native engine's rolling panic rate, and pin/unpin transitions.
	EnginePinned    bool    `json:"enginePinned"`
	EnginePanicRate float64 `json:"enginePanicRate"`
	EnginePins      int64   `json:"enginePins"`
	EngineUnpins    int64   `json:"engineUnpins"`
}

// HealthResponse is the body of GET /healthz: pure liveness. It
// answers 200 whenever the process can serve HTTP at all — degraded
// and draining states included — so orchestrators restart the process
// only when it is truly wedged.
type HealthResponse struct {
	Status   string  `json:"status"` // always "ok" when the handler runs
	Health   string  `json:"health"`
	UptimeMs float64 `json:"uptimeMs"`
}

// ReadyResponse is the body of GET /readyz: readiness for new work.
// Ready is false (and the status 503) only while draining; a degraded
// server still serves scans (cold only) and stays ready.
type ReadyResponse struct {
	Ready  bool   `json:"ready"`
	Health string `json:"health"`
	// Reason names the signal behind a degraded state ("" when healthy).
	Reason string `json:"reason,omitempty"`
}

// ErrorJSON is the error envelope every non-2xx response carries.
type ErrorJSON struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// Error codes used in the envelope.
const (
	CodeBadRequest   = "bad_request" // malformed body or invalid knob (400)
	CodeNotFound     = "not_found"   // unknown route (404)
	CodeMethod       = "method_not_allowed"
	CodeOverloaded   = "overloaded"    // admission control shed the request (429)
	CodeShuttingDown = "shutting_down" // server is draining (503)
	CodeInternal     = "internal"      // recovered panic or I/O failure (500)
	// CodePayloadTooLarge: the request body exceeded the 16 MiB bound
	// (413, structured JSON instead of the stdlib plain-text error).
	CodePayloadTooLarge = "payload_too_large"
	// CodeQuarantined: the offender ledger has circuit-broken this exact
	// content after repeated panics/timeouts; the cached verdict is
	// served with Retry-After until a half-open probe clears it (429).
	CodeQuarantined = "quarantined"
	// CodeCanceled: the client went away before the scan finished (499,
	// the de-facto client-closed-request status). Mostly diagnostic —
	// the client that would read it is gone.
	CodeCanceled = "canceled"
)

// StatusClientClosedRequest is the de-facto (nginx) status for a
// request whose client disconnected before the response was ready.
const StatusClientClosedRequest = 499
