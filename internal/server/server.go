// Package server implements graphjsd, the long-lived scan service: an
// HTTP/JSON daemon that serves concurrent vulnerability scans from one
// static binary. It is the service-shaped assembly of every library
// layer underneath it — the bounded worker-pool semantics of
// scanner.Options.Workers become a global admission-controlled slot
// pool, per-scan budget.Budget allowances are drawn from server-level
// defaults and clamped to server-level ceilings, a process-wide
// scanner.StatePool keeps incremental MDG fragments warm across
// requests (re-submitting an edited package re-analyzes only the
// changed require-components), and supervised corpus sweeps run
// journal-backed through internal/sweepjournal so they resume after a
// restart.
//
// Endpoints (request/response schemas in api.go, reference with curl
// examples in docs/API.md, tuning guidance in docs/OPERATIONS.md):
//
//	POST /v1/scan    scan inline source or an uploaded file set
//	POST /v1/sweep   supervised sweep over a corpus directory on disk
//	GET  /v1/status  worker-pool and warm-state liveness snapshot
//	GET  /v1/metrics status plus failure-class and cache counters
//
// Admission control is a two-stage token scheme: a request first takes
// a queue token (capacity Workers+QueueDepth; none free → 429 with
// Retry-After) and then blocks for one of Workers run slots, so at
// most Workers scans execute concurrently and at most QueueDepth wait.
// Every scan runs behind the scanner's budget.Guard panic fences plus
// a handler-level fence, so a crashing request returns a structured
// 500 instead of killing the daemon. Drain stops admission (503) and
// waits for in-flight work — including journal flushes — to finish.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/budget"
	"repro/internal/queries"
	"repro/internal/scanner"
	"repro/internal/store"
)

// Options configures a Server. The zero value is usable: GOMAXPROCS
// workers, a 2×workers admission queue, the query engine, a 5-minute
// default and ceiling timeout, and unlimited step/size caps.
type Options struct {
	// Workers bounds the number of concurrently executing scans (the
	// global worker pool). 0 = runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a run
	// slot before admission control starts shedding with 429.
	// 0 = 2×Workers; negative = no waiting room (shed immediately when
	// all slots are busy).
	QueueDepth int
	// RetryAfter is the Retry-After hint attached to 429 responses
	// (0 = 1s).
	RetryAfter time.Duration

	// Engine is the default detection backend ("" = query).
	Engine scanner.Engine
	// Config is the sink configuration shared by every scan
	// (nil = queries.DefaultConfig()).
	Config *queries.Config

	// DefaultTimeout is the per-request wall-clock budget when the
	// request does not ask for one (0 = 5m). MaxTimeout is the ceiling
	// a request may ask up to (0 = DefaultTimeout).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// DefaultSteps/Nodes/Edges are the per-request caps when the
	// request does not ask (0 = unlimited). MaxSteps/Nodes/Edges are
	// the ceilings requests are clamped to (0 = unlimited).
	DefaultSteps, DefaultNodes, DefaultEdges int
	MaxSteps, MaxNodes, MaxEdges             int

	// NoWarmState disables the process-wide incremental StatePool:
	// every scan is cold. Useful for memory-constrained replicas.
	NoWarmState bool
	// StateMaxEntries/StateMaxBytes bound the StatePool: when either
	// cap is exceeded the least-recently-used package states are
	// evicted (0 = unbounded). Evicted packages re-scan cold — or
	// store-warm when a Store is attached.
	StateMaxEntries int
	StateMaxBytes   int64

	// Store, when non-nil, is the persistent on-disk cache behind
	// -cache-dir: warm state survives restarts, and sweeps may compact
	// their journals into it. The caller owns it (opens before New,
	// closes after Drain).
	Store *store.Store
	// NoFsync disables per-append journal fsync for sweeps
	// (benchmarks; a crash may lose acknowledged journal entries).
	NoFsync bool

	// BreakerStrikes is how many consecutive panic/timeout outcomes a
	// content hash accrues before the offender breaker quarantines it
	// (0 = 3; negative disables the offender ledger). BreakerCooldown
	// is the quarantine window before a half-open probe (0 = 30s).
	BreakerStrikes  int
	BreakerCooldown time.Duration
	// EngineBreakWindow is the rolling sample window for the native
	// engine's panic rate (0 = 20 outcomes); EngineBreakRate is the
	// rate at/above which native/differential requests are pinned to
	// the fallback engine (0 = 0.5; negative disables the breaker).
	EngineBreakWindow int
	EngineBreakRate   float64
	// DegradedCooldown is how long the daemon stays degraded after the
	// last substrate fault signal before healing to healthy (0 = 30s).
	DegradedCooldown time.Duration
}

// withDefaults resolves the zero values documented on Options.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 2 * o.Workers
	}
	if o.QueueDepth < 0 {
		o.QueueDepth = 0
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.Engine == "" {
		o.Engine = scanner.EngineQuery
	}
	if o.Config == nil {
		o.Config = queries.DefaultConfig()
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 5 * time.Minute
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = o.DefaultTimeout
	}
	if o.DefaultTimeout > o.MaxTimeout {
		o.DefaultTimeout = o.MaxTimeout
	}
	clampDefault := func(def *int, max int) {
		if max > 0 && (*def <= 0 || *def > max) {
			*def = max
		}
	}
	clampDefault(&o.DefaultSteps, o.MaxSteps)
	clampDefault(&o.DefaultNodes, o.MaxNodes)
	clampDefault(&o.DefaultEdges, o.MaxEdges)
	if o.DegradedCooldown <= 0 {
		o.DegradedCooldown = 30 * time.Second
	}
	return o
}

// Server is the graphjsd daemon state: the HTTP mux, the admission
// token pools, the process-wide warm StatePool, and the lifetime
// counters served by /v1/status and /v1/metrics. Create with New; all
// methods are safe for concurrent use.
type Server struct {
	opts Options
	mux  *http.ServeMux
	pool *scanner.StatePool

	// queue admits requests (capacity Workers+QueueDepth); slots runs
	// them (capacity Workers). Both are token semaphores.
	queue chan struct{}
	slots chan struct{}

	start time.Time

	scans    atomic.Int64
	sweeps   atomic.Int64
	rejected atomic.Int64

	// mu guards the drain state, the in-flight count, the failure
	// counters, and the health machine; idle is signalled when the
	// in-flight count reaches zero (what Drain waits on).
	mu       sync.Mutex
	idle     *sync.Cond
	draining bool
	inflight int
	failures map[string]int64

	// Health state machine (health.go). The last* fields snapshot the
	// substrate counters so observeHealth reacts to deltas, not
	// lifetime totals.
	health                           string
	healthReason                     string
	transitions                      map[string]int64
	degradedUntil                    time.Time
	lastWriteErrors, lastQuarantined int64
	lastEvictedBytes                 int64
	canceled                         atomic.Int64

	// Circuit breakers (breaker.go); either may be nil (disabled).
	offenders *offenderLedger
	engines   *engineBreaker

	// now is the clock, injectable so breaker/degraded cooldown tests
	// don't sleep.
	now func() time.Time
}

// testHookScanning, when non-nil, runs while a scan request holds its
// run slot, before the scan executes, with the request's context.
// Admission-control tests use it to pin workers, and cancellation
// tests use ctx to wait until the server has observed a client
// disconnect; it must only be set while no requests are in flight.
var testHookScanning func(name string, ctx context.Context)

// New builds a Server (resolving option defaults) without binding a
// listener; the caller serves s.Handler() however it likes.
func New(opts Options) *Server {
	o := opts.withDefaults()
	s := &Server{
		opts:        o,
		mux:         http.NewServeMux(),
		queue:       make(chan struct{}, o.Workers+o.QueueDepth),
		slots:       make(chan struct{}, o.Workers),
		start:       time.Now(),
		failures:    map[string]int64{},
		health:      HealthHealthy,
		transitions: map[string]int64{},
		offenders:   newOffenderLedger(o.BreakerStrikes, o.BreakerCooldown),
		engines:     newEngineBreaker(o.EngineBreakWindow, o.EngineBreakRate),
		now:         time.Now,
	}
	s.idle = sync.NewCond(&s.mu)
	if !o.NoWarmState {
		s.pool = scanner.NewStatePool()
		s.pool.SetLimits(o.StateMaxEntries, o.StateMaxBytes)
		if o.Store != nil {
			s.pool.AttachStore(o.Store)
		}
	}
	s.mux.HandleFunc("/v1/scan", s.handleScan)
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	s.mux.HandleFunc("/v1/status", s.handleStatus)
	s.mux.HandleFunc("/v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops admitting new work (subsequent requests get 503
// shutting_down) and blocks until every in-flight request has
// finished — scans completed, sweep journals flushed and closed. It is
// the graceful-shutdown half the SIGTERM handler in cmd/graphjsd runs
// after closing the listener.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.setHealthLocked(HealthDraining, "drain requested")
	for s.inflight > 0 {
		s.idle.Wait()
	}
	s.mu.Unlock()
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// admit implements admission control for scan-like work: it rejects
// drain-mode requests with 503, sheds with 429 + Retry-After when the
// queue is full, then blocks for a run slot — racing the slot wait
// against the request context so a client that disconnects while
// queued gives its place back immediately (answered 499, never
// occupying a slot it will not read the response of). On success the
// caller must call the returned release function exactly once.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, CodeShuttingDown, "server is draining")
		return nil, false
	}
	select {
	case s.queue <- struct{}{}:
		s.inflight++
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		s.rejected.Add(1)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(s.opts.RetryAfter.Seconds()+0.999)))
		writeError(w, http.StatusTooManyRequests, CodeOverloaded,
			fmt.Sprintf("worker pool saturated (capacity %d running + %d queued); retry later",
				cap(s.slots), cap(s.queue)-cap(s.slots)))
		return nil, false
	}
	releaseQueue := func() {
		<-s.queue
		s.mu.Lock()
		s.inflight--
		if s.inflight == 0 {
			s.idle.Broadcast()
		}
		s.mu.Unlock()
	}
	select {
	case s.slots <- struct{}{}:
	case <-r.Context().Done():
		releaseQueue()
		s.canceled.Add(1)
		s.recordFailure(budget.ClassCanceled)
		writeError(w, StatusClientClosedRequest, CodeCanceled,
			"request canceled while waiting for a run slot")
		return nil, false
	}
	return func() {
		<-s.slots
		releaseQueue()
	}, true
}

// recordFailure counts one terminal scan outcome for /v1/metrics
// ("ok" for clean scans).
func (s *Server) recordFailure(class budget.Class) {
	key := "ok"
	if class != budget.ClassNone {
		key = class.String()
	}
	s.mu.Lock()
	s.failures[key]++
	s.mu.Unlock()
}

// state returns the incremental state for a named package, or nil when
// warm state is disabled, the request asked for a cold scan, the
// package is anonymous, or the daemon is degraded (degraded mode
// serves cold scans only — correct results without leaning on the
// sick warm-state substrate).
func (s *Server) state(name string, cold bool) *scanner.IncrementalState {
	if s.pool == nil || cold || name == "" || s.degraded() {
		return nil
	}
	return s.pool.Get(name)
}

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes the error envelope every non-2xx response uses.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	var e ErrorJSON
	e.Error.Code = code
	e.Error.Message = msg
	writeJSON(w, status, e)
}

// requireMethod enforces the route's verb, answering 405 otherwise.
func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		writeError(w, http.StatusMethodNotAllowed, CodeMethod,
			fmt.Sprintf("%s requires %s", r.URL.Path, method))
		return false
	}
	return true
}
