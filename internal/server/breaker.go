package server

import (
	"sync"
	"time"

	"repro/internal/budget"
	"repro/internal/scanner"
)

// Circuit breakers: the daemon's memory of repeat offenders.
//
// The offender ledger is content-addressed: every scan request is
// hashed over its exact file set, and hashes whose scans keep dying
// (engine panics, full-allowance timeouts) are quarantined — served a
// cached `quarantined` verdict with Retry-After instead of burning a
// run slot on input the server already knows wedges it. After the
// cooldown a single half-open probe is admitted; a clean probe clears
// the hash, a failed one re-opens it for another cooldown.
//
// The engine breaker is coarser: a rolling window of native-engine
// outcomes across all requests. When the native panic rate trips the
// threshold, requests asking for the native or differential engine are
// pinned to the fallback engine (which still runs native first, so the
// window keeps refreshing and the breaker un-pins itself once the
// panic rate drops — the half-open probe is built into the fallback
// engine's shape).

// offenderEntry tracks one content hash's recent behavior.
type offenderEntry struct {
	strikes   int
	lastSeen  time.Time
	lastClass budget.Class
	// open marks the hash quarantined until openUntil; probing marks
	// the single half-open probe currently in flight.
	open      bool
	openUntil time.Time
	probing   bool
}

// offenderLedger is the per-content-hash circuit breaker. A nil ledger
// (breakers disabled) admits everything.
type offenderLedger struct {
	mu         sync.Mutex
	threshold  int           // strikes before the hash trips
	cooldown   time.Duration // quarantine duration / Retry-After hint
	maxEntries int           // bound on tracked hashes (LRU evicted)
	now        func() time.Time

	entries map[string]*offenderEntry

	trips     int64 // lifetime quarantine transitions
	shed      int64 // requests answered with the cached verdict
	recovered int64 // hashes cleared by a clean half-open probe
}

func newOffenderLedger(threshold int, cooldown time.Duration) *offenderLedger {
	if threshold < 0 {
		return nil
	}
	if threshold == 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 30 * time.Second
	}
	return &offenderLedger{
		threshold:  threshold,
		cooldown:   cooldown,
		maxEntries: 4096,
		now:        time.Now,
		entries:    map[string]*offenderEntry{},
	}
}

// offenderDecision is the ledger's admission verdict for one hash.
type offenderDecision struct {
	quarantined bool
	retryAfter  time.Duration
	probe       bool // this request is the half-open probe
	lastClass   budget.Class
}

// admit decides whether a request for this content hash may run.
func (l *offenderLedger) admit(hash string) offenderDecision {
	if l == nil {
		return offenderDecision{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.entries[hash]
	if e == nil || !e.open {
		return offenderDecision{}
	}
	now := l.now()
	e.lastSeen = now
	if now.Before(e.openUntil) || e.probing {
		l.shed++
		ra := e.openUntil.Sub(now)
		if ra <= 0 {
			ra = l.cooldown // a probe is already in flight; come back later
		}
		return offenderDecision{quarantined: true, retryAfter: ra, lastClass: e.lastClass}
	}
	// Cooldown elapsed and no probe in flight: let exactly one request
	// through half-open.
	e.probing = true
	return offenderDecision{probe: true, lastClass: e.lastClass}
}

// strikeClass reports whether a failure class counts as an offense:
// engine panics and wall-clock timeouts are the classes a hostile or
// pathological input reproduces across requests. Cancellation says the
// client died, not the scan; parse/resolve errors are deterministic
// content verdicts the scan *completed* with; budget caps are the
// client's own knobs.
func strikeClass(c budget.Class) bool {
	return c == budget.ClassPanic || c == budget.ClassTimeout
}

// record folds one terminal scan outcome for the hash into the ledger.
// strikeEligible gates timeout strikes: a request that asked for a
// below-default timeout can time out on innocent content, so only
// full-allowance failures count.
func (l *offenderLedger) record(hash string, class budget.Class, strikeEligible bool) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.entries[hash]
	now := l.now()

	if class == budget.ClassCanceled {
		// No verdict either way; a consumed probe slot reopens so the
		// next request can probe instead.
		if e != nil && e.probing {
			e.probing = false
		}
		return
	}
	if strikeClass(class) && strikeEligible {
		if e == nil {
			e = &offenderEntry{}
			l.insertLocked(hash, e)
		}
		e.strikes++
		e.lastSeen = now
		e.lastClass = class
		if e.probing {
			// Failed probe: straight back to quarantine.
			e.probing = false
			e.openUntil = now.Add(l.cooldown)
			l.trips++
		} else if !e.open && e.strikes >= l.threshold {
			e.open = true
			e.openUntil = now.Add(l.cooldown)
			l.trips++
		}
		return
	}
	// Any completed non-offense outcome resets the hash: strikes count
	// consecutive offenses, and a clean half-open probe recovers a
	// quarantined hash entirely.
	if e != nil {
		if e.open {
			l.recovered++
		}
		delete(l.entries, hash)
	}
}

// insertLocked adds a new entry, evicting the least-recently-seen one
// when the ledger is full (the ledger is a bounded memory of recent
// offenders, not an unbounded map a hostile client can balloon).
func (l *offenderLedger) insertLocked(hash string, e *offenderEntry) {
	if len(l.entries) >= l.maxEntries {
		oldest, oldestT := "", time.Time{}
		for k, v := range l.entries {
			if oldest == "" || v.lastSeen.Before(oldestT) {
				oldest, oldestT = k, v.lastSeen
			}
		}
		delete(l.entries, oldest)
	}
	l.entries[hash] = e
}

// snapshot fills the ledger's slice of the metrics response.
func (l *offenderLedger) snapshot(out *BreakersJSON) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out.OffenderTracked = len(l.entries)
	for _, e := range l.entries {
		if e.open {
			out.OffenderOpen++
		}
	}
	out.OffenderTrips = l.trips
	out.OffenderShed = l.shed
	out.OffenderRecovered = l.recovered
}

// engineBreaker watches the native engine's rolling panic rate. A nil
// breaker never pins.
type engineBreaker struct {
	mu         sync.Mutex
	window     []bool // ring of native outcomes, true = panicked
	idx, n     int
	minSamples int
	threshold  float64 // panic rate at/above which fallback is pinned

	pinned bool
	pins   int64
	unpins int64
}

func newEngineBreaker(window int, rate float64) *engineBreaker {
	if rate < 0 {
		return nil
	}
	if window <= 0 {
		window = 20
	}
	if rate == 0 {
		rate = 0.5
	}
	min := window / 2
	if min < 1 {
		min = 1
	}
	return &engineBreaker{window: make([]bool, window), minSamples: min, threshold: rate}
}

// pin substitutes the fallback engine for native-first engines while
// the breaker is open. The query engine never ran native, so it is
// never rewritten; an explicit fallback request already has the shape
// the breaker wants.
func (eb *engineBreaker) pin(eng scanner.Engine) (scanner.Engine, bool) {
	if eb == nil {
		return eng, false
	}
	eb.mu.Lock()
	defer eb.mu.Unlock()
	if eb.pinned && (eng == scanner.EngineNative || eng == scanner.EngineDifferential) {
		return scanner.EngineFallback, true
	}
	return eng, false
}

// record folds one native-engine outcome into the rolling window and
// re-evaluates the breaker. Because the fallback engine still runs
// native first, a pinned breaker keeps receiving fresh samples and
// un-pins itself once the panic rate drops below the threshold — the
// half-open probe is continuous rather than discrete.
func (eb *engineBreaker) record(panicked bool) {
	if eb == nil {
		return
	}
	eb.mu.Lock()
	defer eb.mu.Unlock()
	eb.window[eb.idx] = panicked
	eb.idx = (eb.idx + 1) % len(eb.window)
	if eb.n < len(eb.window) {
		eb.n++
	}
	rate := eb.rateLocked()
	if !eb.pinned && eb.n >= eb.minSamples && rate >= eb.threshold {
		eb.pinned = true
		eb.pins++
	} else if eb.pinned && rate < eb.threshold {
		eb.pinned = false
		eb.unpins++
	}
}

func (eb *engineBreaker) rateLocked() float64 {
	if eb.n == 0 {
		return 0
	}
	panics := 0
	for i := 0; i < eb.n; i++ {
		if eb.window[i] {
			panics++
		}
	}
	return float64(panics) / float64(eb.n)
}

// snapshot fills the engine breaker's slice of the metrics response.
func (eb *engineBreaker) snapshot(out *BreakersJSON) {
	if eb == nil {
		return
	}
	eb.mu.Lock()
	defer eb.mu.Unlock()
	out.EnginePinned = eb.pinned
	out.EnginePanicRate = eb.rateLocked()
	out.EnginePins = eb.pins
	out.EngineUnpins = eb.unpins
}

// nativeOutcome reports whether a scan ran the native engine and, if
// so, whether native panicked. Differential runs both engines and a
// panic cannot be attributed cleanly, so it contributes no sample.
func nativeOutcome(eng scanner.Engine, rep *scanner.Report) (ran, panicked bool) {
	switch eng {
	case scanner.EngineNative:
		return true, rep.Failure == budget.ClassPanic
	case scanner.EngineFallback:
		if rep.FellBack {
			return true, budget.ClassOf(rep.FallbackErr) == budget.ClassPanic
		}
		return true, rep.Failure == budget.ClassPanic
	}
	return false, false
}
