package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// heavySource is an analysis-heavy module: the nested object churn
// drives the abstract-interpretation fixpoint long enough (tens of
// milliseconds) that a scan cannot finish before the server notices
// its client disconnected.
func heavySource() string {
	var sb strings.Builder
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&sb, "function helper%d(v) { var o = {}; for (var i = 0; i < 7; i++) { for (var j = 0; j < 7; j++) { var t = {}; t.a = v; t.b = o; o.x = t; o = t; } } return o; }\n", i)
	}
	sb.WriteString("module.exports = helper0;\n")
	return sb.String()
}

// cancelableScan fires a /v1/scan request whose context the test
// controls, returning a channel that yields the client-side error once
// the request finishes (context.Canceled for an abandoned request).
func cancelableScan(t *testing.T, ctx context.Context, url string, req ScanRequest) <-chan error {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		hr, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/scan", bytes.NewReader(data))
		if err != nil {
			done <- err
			return
		}
		resp, err := http.DefaultClient.Do(hr)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	return done
}

// The satellite regression for run-slot release: a client that
// disconnects mid-scan frees its slot, so the next request is admitted
// instead of shed with 429.
func TestClientDisconnectFreesRunSlot(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: -1})

	started := make(chan struct{}, 1)
	unblock := make(chan struct{})
	testHookScanning = func(name string, ctx context.Context) {
		if name == "blocker" {
			started <- struct{}{}
			<-unblock
			// Release the scan only once the SERVER has observed the
			// disconnect — the client's Do returning does not mean the
			// server's connection reader has noticed yet.
			select {
			case <-ctx.Done():
			case <-time.After(10 * time.Second):
			}
		}
	}
	defer func() { testHookScanning = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	clientDone := cancelableScan(t, ctx, ts.URL, ScanRequest{Name: "blocker", Source: heavySource()})
	<-started

	// The only slot is held and there is no waiting room: a second
	// request must be shed.
	resp := postJSON(t, ts.URL+"/v1/scan", ScanRequest{Name: "other", Source: "module.exports = 2;"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("while slot held: status %d, want 429", resp.StatusCode)
	}
	resp.Body.Close()

	// Client walks away; the scan observes the dead context at a budget
	// checkpoint and the slot comes back.
	cancel()
	if err := <-clientDone; err == nil {
		t.Fatal("canceled client request unexpectedly succeeded")
	}
	close(unblock)

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := postJSON(t, ts.URL+"/v1/scan", ScanRequest{Name: "other", Source: "module.exports = 2;"})
		if resp.StatusCode == http.StatusOK {
			resp.Body.Close()
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed after client disconnect (last status %d)", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}

	for {
		st := decodeResp[StatusResponse](t, getURL(t, ts.URL+"/v1/status"), http.StatusOK)
		if st.Canceled >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scan was never classified canceled (canceled=%d)", st.Canceled)
		}
		time.Sleep(10 * time.Millisecond)
	}
	m := decodeResp[MetricsResponse](t, getURL(t, ts.URL+"/v1/metrics"), http.StatusOK)
	if m.Failures["canceled"] < 1 {
		t.Fatalf("failures[canceled] = %d, want >= 1", m.Failures["canceled"])
	}
}

// A request canceled while waiting for a run slot gives its queue
// token back immediately (the ctx-aware slot wait in admit), so a
// later request is admitted rather than shed.
func TestCanceledWhileQueuedFreesQueueToken(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1})

	started := make(chan struct{}, 1)
	unblock := make(chan struct{})
	testHookScanning = func(name string, _ context.Context) {
		if name == "blocker" {
			started <- struct{}{}
			<-unblock
		}
	}
	defer func() { testHookScanning = nil }()

	blockerDone := cancelableScan(t, context.Background(), ts.URL, ScanRequest{Name: "blocker", Source: "module.exports = 1;", TimeoutMs: 60000})
	<-started

	// B takes the one queue token and blocks on the slot, then its
	// client walks away.
	ctx, cancel := context.WithCancel(context.Background())
	bDone := cancelableScan(t, ctx, ts.URL, ScanRequest{Name: "queued", Source: "module.exports = 2;"})
	time.Sleep(50 * time.Millisecond) // let B reach the slot wait
	cancel()
	if err := <-bDone; err == nil {
		t.Fatal("canceled queued request unexpectedly succeeded")
	}

	// The queue token must come back without the blocker finishing:
	// the queued count drops to zero while the blocker still runs.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := decodeResp[StatusResponse](t, getURL(t, ts.URL+"/v1/status"), http.StatusOK)
		if st.Queued == 0 && st.Canceled >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue token never returned after queued client disconnect (queued=%d canceled=%d)",
				st.Queued, st.Canceled)
		}
		time.Sleep(10 * time.Millisecond)
	}

	close(unblock)
	<-blockerDone

	st := decodeResp[StatusResponse](t, getURL(t, ts.URL+"/v1/status"), http.StatusOK)
	if st.Canceled < 1 {
		t.Fatalf("status canceled = %d, want >= 1", st.Canceled)
	}
}

// A canceled scan must leave nothing behind in the warm state: the
// next scan of the same content starts from scratch (no fragment
// hits), while a clean scan does populate the cache (the contrast that
// proves the first assertion is testing the right thing).
func TestCanceledScanNotCached(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	req := ScanRequest{Name: "cc", Files: []SourceFileJSON{
		{Rel: "heavy.js", Src: heavySource()},
		{Rel: "index.js", Src: "var r = require('./lib');\nrequire('./heavy');\nmodule.exports = function(x){ return r(x); };\n"},
		{Rel: "lib.js", Src: "const { exec } = require('child_process');\nmodule.exports = function(c){ exec(c); };\n"},
	}}

	started := make(chan struct{}, 1)
	unblock := make(chan struct{})
	testHookScanning = func(name string, ctx context.Context) {
		if name == "cc" {
			select {
			case started <- struct{}{}:
				<-unblock
				// Run the scan only after the server has observed the
				// disconnect, so the cancellation is deterministic.
				select {
				case <-ctx.Done():
				case <-time.After(10 * time.Second):
				}
			default:
			}
		}
	}
	defer func() { testHookScanning = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	clientDone := cancelableScan(t, ctx, ts.URL, req)
	<-started
	cancel()
	<-clientDone
	close(unblock)
	// Wait for the canceled scan to release its slot before re-scanning.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := decodeResp[StatusResponse](t, getURL(t, ts.URL+"/v1/status"), http.StatusOK)
		if st.Running == 0 && st.Scans >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("canceled scan never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
	testHookScanning = nil

	// Second scan: the canceled first scan must not have cached
	// fragments or detection results.
	second := decodeResp[ScanResponse](t, postJSON(t, ts.URL+"/v1/scan", req), http.StatusOK)
	if second.Incremental != nil && (second.Incremental.FragmentHits > 0 || second.Incremental.DetectHits > 0) {
		t.Fatalf("canceled scan leaked into the cache: %+v", *second.Incremental)
	}

	// Third scan: the clean second scan DOES cache — proving the
	// counters above would have caught a leak.
	third := decodeResp[ScanResponse](t, postJSON(t, ts.URL+"/v1/scan", req), http.StatusOK)
	if third.Incremental == nil || third.Incremental.FragmentHits == 0 {
		t.Fatalf("clean scan did not warm the cache (fragment hits = %+v); the leak assertion is vacuous", third.Incremental)
	}
}

// The satellite regression for oversized uploads: exceeding the body
// bound answers a structured JSON 413, not the stdlib's plain-text
// "http: request body too large".
func TestOversizedBodyStructured413(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	// A syntactically valid request whose source field alone exceeds the
	// bound, so the decoder keeps reading until MaxBytesReader trips
	// (garbage bytes would fail as a JSON syntax error at byte one).
	var big bytes.Buffer
	big.WriteString(`{"name":"big","source":"`)
	big.Write(bytes.Repeat([]byte("a"), maxBodyBytes+1024))
	big.WriteString(`"}`)
	resp, err := http.Post(ts.URL+"/v1/scan", "application/json", bytes.NewReader(big.Bytes()))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("Content-Type %q, want application/json", ct)
	}
	var e ErrorJSON
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("413 body is not the JSON error envelope: %v", err)
	}
	if e.Error.Code != CodePayloadTooLarge {
		t.Fatalf("code %q, want %q", e.Error.Code, CodePayloadTooLarge)
	}
}
