package server

import (
	"net/http"
	"strings"
	"testing"

	"repro/internal/dataset"
)

// treeRequest renders a dataset tree fixture as a /v1/scan tree body.
func treeRequest(name string, files []dataset.TreeFile) ScanRequest {
	req := ScanRequest{Name: name, Tree: true}
	for _, f := range files {
		req.Files = append(req.Files, SourceFileJSON{Rel: f.Rel, Src: f.Src})
	}
	return req
}

// TestScanTree: a dependency-tree upload yields the documented
// response shape — sink in the dependency file, package-qualified
// hops, a dependency path, and the tree-shape stats — and re-uploading
// after editing one dependency re-analyzes only that package's
// fragment.
func TestScanTree(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	var tc dataset.TreeCase
	for _, c := range dataset.TreeCases() {
		if c.Name == "tree-direct" {
			tc = c
		}
	}

	resp := decodeResp[ScanResponse](t, postJSON(t, ts.URL+"/v1/scan", treeRequest("treedemo", tc.Files)), http.StatusOK)
	if resp.Failure != "" || len(resp.Findings) != 1 {
		t.Fatalf("failure=%q findings=%d, want clean with 1", resp.Failure, len(resp.Findings))
	}
	f := resp.Findings[0]
	if f.File != "node_modules/dep/index.js" {
		t.Errorf("sink file %q, want the dependency's", f.File)
	}
	if len(f.DepPath) == 0 || !strings.Contains(strings.Join(f.DepPath, " "), "dep@1.2.3 (node_modules/dep)") {
		t.Errorf("depPath %v does not name the dependency", f.DepPath)
	}
	for _, h := range f.Hops {
		if strings.Count(h, ":") < 2 {
			t.Errorf("hop %q is not pkg:file:name qualified", h)
		}
	}
	if resp.Stats.TreePackages != 2 || resp.Stats.TreeDepth != 1 {
		t.Errorf("tree stats %d/%d, want 2 packages at depth 1", resp.Stats.TreePackages, resp.Stats.TreeDepth)
	}
	if resp.Incremental == nil || resp.Incremental.FragmentRebuilds != 2 {
		t.Fatalf("cold tree scan incremental stats %+v, want 2 rebuilds", resp.Incremental)
	}

	// Edit the dependency (defuse the sink) and re-submit under the
	// same name: only dep's fragment rebuilds, the finding disappears.
	edited := make([]dataset.TreeFile, len(tc.Files))
	copy(edited, tc.Files)
	for i, fl := range edited {
		if fl.Rel == "node_modules/dep/index.js" {
			edited[i].Src = strings.ReplaceAll(fl.Src, "exec(cmd)", "exec('echo ok')")
		}
	}
	resp2 := decodeResp[ScanResponse](t, postJSON(t, ts.URL+"/v1/scan", treeRequest("treedemo", edited)), http.StatusOK)
	if len(resp2.Findings) != 0 {
		t.Fatalf("defused dependency still yields %d findings", len(resp2.Findings))
	}
	if resp2.Incremental.FragmentRebuilds != 3 {
		t.Fatalf("one-dep edit: cumulative rebuilds %d, want 3 (one new)", resp2.Incremental.FragmentRebuilds)
	}

	// A broken tree is a structured resolve-error, not a 500.
	broken := ScanRequest{Name: "brokentree", Tree: true, Files: []SourceFileJSON{
		{Rel: "package.json", Src: `{"name":"broken","version":"1.0.0","dependencies":{"gone":"^1.0.0"}}`},
		{Rel: "index.js", Src: "var g = require('gone');\nmodule.exports = function (x) { g.run(x); };\n"},
	}}
	resp3 := decodeResp[ScanResponse](t, postJSON(t, ts.URL+"/v1/scan", broken), http.StatusOK)
	if resp3.Failure != "resolve-error" || !strings.Contains(resp3.ScanError, "gone") {
		t.Fatalf("broken tree: failure=%q err=%q, want resolve-error naming the dep", resp3.Failure, resp3.ScanError)
	}

	// tree with inline source is a validation error.
	bad := ScanRequest{Tree: true, Source: "1"}
	resp4 := postJSON(t, ts.URL+"/v1/scan", bad)
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusBadRequest {
		t.Fatalf("tree+source returned %d, want 400", resp4.StatusCode)
	}
}
