package server

import (
	"net/http"
	"time"
)

// HTTPOptions are the transport-level protections on the daemon's
// listener. They exist because the scan handlers' admission control
// only defends work the HTTP layer has already accepted: a slowloris
// client that dribbles header bytes, or a reader that never drains its
// response, holds a connection (and its goroutine) without ever
// reaching admit. The zero value resolves to safe production defaults;
// a negative duration disables that timeout explicitly.
type HTTPOptions struct {
	// ReadHeaderTimeout bounds how long a client may take to finish
	// sending request headers (0 = 10s). This is the slowloris defense:
	// a connection that trickles one header byte per second is closed
	// long before it can pile up against the file-descriptor limit.
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds reading the entire request including the body
	// (0 = 2m — ample for a 16 MiB upload on a slow link).
	ReadTimeout time.Duration
	// WriteTimeout bounds writing the response, measured from the end
	// of the request headers (0 = maxScan+30s so the longest admitted
	// scan can still answer; sweeps lift it per-connection via
	// http.ResponseController). maxScan is the server's MaxTimeout.
	WriteTimeout time.Duration
	// IdleTimeout bounds how long a keep-alive connection may sit
	// between requests (0 = 2m).
	IdleTimeout time.Duration
	// MaxHeaderBytes bounds request header size (0 = 64 KiB).
	MaxHeaderBytes int
}

// withDefaults resolves the documented zero values. maxScan is the
// longest scan the server will admit (Options.MaxTimeout after
// defaulting); WriteTimeout must outlast it or every long scan would
// be killed at the transport while still computing.
func (h HTTPOptions) withDefaults(maxScan time.Duration) HTTPOptions {
	resolve := func(d *time.Duration, def time.Duration) {
		if *d == 0 {
			*d = def
		} else if *d < 0 {
			*d = 0 // stdlib semantics: zero disables
		}
	}
	resolve(&h.ReadHeaderTimeout, 10*time.Second)
	resolve(&h.ReadTimeout, 2*time.Minute)
	resolve(&h.WriteTimeout, maxScan+30*time.Second)
	resolve(&h.IdleTimeout, 2*time.Minute)
	if h.MaxHeaderBytes == 0 {
		h.MaxHeaderBytes = 64 << 10
	} else if h.MaxHeaderBytes < 0 {
		h.MaxHeaderBytes = 0
	}
	return h
}

// NewHTTPServer wraps the daemon's handler in an http.Server with the
// transport protections resolved against the scan server's own
// ceilings. cmd/graphjsd serves exclusively through this (never bare
// http.ListenAndServe, which ships with no timeouts at all).
func (s *Server) NewHTTPServer(addr string, h HTTPOptions) *http.Server {
	h = h.withDefaults(s.opts.MaxTimeout)
	return &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: h.ReadHeaderTimeout,
		ReadTimeout:       h.ReadTimeout,
		WriteTimeout:      h.WriteTimeout,
		IdleTimeout:       h.IdleTimeout,
		MaxHeaderBytes:    h.MaxHeaderBytes,
	}
}
