package server

import (
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/store"
)

func openServerStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestCacheDirWarmRestart simulates a daemon restart: scan through one
// server backed by a cache dir, tear it down, start a second server on
// the same dir, and check the same scan comes back store-warm (no
// fragment rebuilds) with identical findings.
func TestCacheDirWarmRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	req := ScanRequest{Name: "restartpkg", Source: "module.exports = function(c){ require('child_process').exec(c) }\n"}

	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := newTestServer(t, Options{Workers: 2, Store: st1})
	first := decodeResp[ScanResponse](t, postJSON(t, ts1.URL+"/v1/scan", req), http.StatusOK)
	if first.Incremental == nil || first.Incremental.StorePuts == 0 {
		t.Fatalf("first scan wrote nothing to the store: %+v", first.Incremental)
	}
	ts1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openServerStore(t, dir)
	_, ts2 := newTestServer(t, Options{Workers: 2, Store: st2})
	second := decodeResp[ScanResponse](t, postJSON(t, ts2.URL+"/v1/scan", req), http.StatusOK)
	if second.Incremental == nil {
		t.Fatal("restarted scan reported no incremental stats")
	}
	if second.Incremental.StoreHits == 0 || second.Incremental.FragmentRebuilds != 0 {
		t.Fatalf("restart was not store-warm: %+v", second.Incremental)
	}
	if len(second.Findings) != len(first.Findings) {
		t.Fatalf("store-warm restart changed findings: %d vs %d",
			len(second.Findings), len(first.Findings))
	}

	// The status snapshot must surface the store and its traffic.
	status := decodeResp[StatusResponse](t, getURL(t, ts2.URL+"/v1/status"), http.StatusOK)
	if status.Store == nil {
		t.Fatal("status omitted the store block despite -cache-dir")
	}
	if status.Store.Entries == 0 || status.Store.Hits == 0 {
		t.Fatalf("status store counters empty: %+v", status.Store)
	}
}

// TestCorruptCacheDirDegradesToCold flips bytes across the second
// server's store log: findings must match the cache-free scan exactly,
// with the damage visible only as quarantine counters.
func TestCorruptCacheDirDegradesToCold(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	req := ScanRequest{Name: "rotpkg", Source: "module.exports = function(c){ eval(c) }\n"}

	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := newTestServer(t, Options{Workers: 2, Store: st1})
	baseline := decodeResp[ScanResponse](t, postJSON(t, ts1.URL+"/v1/scan", req), http.StatusOK)
	ts1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Rot the log body (header left intact so the file is recognized).
	path := filepath.Join(dir, "store.dat")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 8; i < len(data); i += 11 {
		data[i] ^= 0x5A
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := openServerStore(t, dir)
	_, ts2 := newTestServer(t, Options{Workers: 2, Store: st2})
	got := decodeResp[ScanResponse](t, postJSON(t, ts2.URL+"/v1/scan", req), http.StatusOK)
	if len(got.Findings) != len(baseline.Findings) {
		t.Fatalf("corrupted store changed findings: %d vs %d", len(got.Findings), len(baseline.Findings))
	}
	if gb, bb := string(encodeReport(got.ReportJSON)), string(encodeReport(baseline.ReportJSON)); gb != bb {
		t.Fatalf("report diverged under corruption:\n%s\nvs\n%s", gb, bb)
	}
}

// TestStatePoolEvictionCounters bounds the pool at one package and
// checks /v1/status reports the LRU evictions.
func TestStatePoolEvictionCounters(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, StateMaxEntries: 1})
	src := "module.exports = function(x){ return x }\n"
	for _, name := range []string{"pkg-a", "pkg-b", "pkg-c"} {
		resp := postJSON(t, ts.URL+"/v1/scan", ScanRequest{Name: name, Source: src})
		decodeResp[ScanResponse](t, resp, http.StatusOK)
	}
	status := decodeResp[StatusResponse](t, getURL(t, ts.URL+"/v1/status"), http.StatusOK)
	if status.StatePackages != 1 {
		t.Fatalf("pool holds %d packages, want 1 (cap)", status.StatePackages)
	}
	if status.StateEvictedStates != 2 {
		t.Fatalf("evicted %d states, want 2", status.StateEvictedStates)
	}
}

// TestSweepCompactJournalValidation: compactJournal without a journal
// or without a cache dir is a client error, not a silent no-op.
func TestSweepCompactJournalValidation(t *testing.T) {
	corpus := t.TempDir()
	if err := os.WriteFile(filepath.Join(corpus, "a.js"),
		[]byte("module.exports = 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{Workers: 1})
	resp := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Path: corpus, CompactJournal: true})
	decodeResp[ErrorJSON](t, resp, http.StatusBadRequest)
	resp = postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Path: corpus, Journal: filepath.Join(t.TempDir(), "j.jsonl"), CompactJournal: true})
	decodeResp[ErrorJSON](t, resp, http.StatusBadRequest)
}

// TestSweepCompactJournalThroughStore runs a journal-backed sweep with
// compaction, checks the log is truncated, and that a resume on a
// fresh server backed by the same store skips every target.
func TestSweepCompactJournalThroughStore(t *testing.T) {
	corpus := t.TempDir()
	vuln := "module.exports = function(c){ require('child_process').exec(c) }\n"
	for _, name := range []string{"a.js", "b.js"} {
		if err := os.WriteFile(filepath.Join(corpus, name), []byte(vuln), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	dir := filepath.Join(t.TempDir(), "cache")

	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := newTestServer(t, Options{Workers: 2, Store: st1})
	sweep := decodeResp[SweepResponse](t, postJSON(t, ts1.URL+"/v1/sweep", SweepRequest{
		Path: corpus, Journal: journal, CompactJournal: true,
	}), http.StatusOK)
	if sweep.Completed != 2 {
		t.Fatalf("sweep completed %d targets, want 2", sweep.Completed)
	}
	ts1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(journal); err != nil || fi.Size() != 0 {
		t.Fatalf("journal not compacted away: size=%v err=%v", fi.Size(), err)
	}

	// A fresh daemon on the same store resumes from the compacted
	// entries: every target skipped, nothing re-scanned.
	st2 := openServerStore(t, dir)
	_, ts2 := newTestServer(t, Options{Workers: 2, Store: st2})
	resumed := decodeResp[SweepResponse](t, postJSON(t, ts2.URL+"/v1/sweep", SweepRequest{
		Path: corpus, Journal: journal, Resume: true,
	}), http.StatusOK)
	if resumed.Resumed != 2 {
		t.Fatalf("resumed %d targets from the compacted store, want 2", resumed.Resumed)
	}
}

func getURL(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp
}
