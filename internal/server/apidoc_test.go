package server

import (
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// curlExample is one replayable curl command lifted from docs/API.md.
type curlExample struct {
	method string
	path   string
	body   string
	want   int // expected status (200 unless the block says "# expect: NNN")
}

// parseCurlExamples extracts every curl command from the fenced code
// blocks of the given markdown. Backslash line continuations are
// joined; an "# expect: NNN" comment line earlier in the same block
// overrides the expected 200.
func parseCurlExamples(t *testing.T, doc string) []curlExample {
	t.Helper()
	var out []curlExample
	blocks := regexp.MustCompile("(?s)```sh\n(.*?)```").FindAllStringSubmatch(doc, -1)
	urlRe := regexp.MustCompile(`https?://[^/\s]+(/\S*)`)
	for _, b := range blocks {
		joined := strings.ReplaceAll(b[1], "\\\n", " ")
		want := http.StatusOK
		lines := strings.Split(joined, "\n")
		for li := 0; li < len(lines); li++ {
			line := strings.TrimSpace(lines[li])
			if rest, ok := strings.CutPrefix(line, "# expect: "); ok {
				n, err := strconv.Atoi(strings.TrimSpace(rest))
				if err != nil {
					t.Fatalf("bad expect annotation %q: %v", line, err)
				}
				want = n
				continue
			}
			if !strings.HasPrefix(line, "curl ") {
				continue
			}
			// A single-quoted argument (the -d body) may span lines:
			// keep appending until the quotes balance.
			for strings.Count(line, "'")%2 == 1 && li+1 < len(lines) {
				li++
				line += "\n" + lines[li]
			}
			ex := curlExample{method: http.MethodGet, want: want}
			if m := urlRe.FindStringSubmatch(line); m != nil {
				ex.path = m[1]
			} else {
				t.Fatalf("curl example without a URL: %q", line)
			}
			if m := regexp.MustCompile(`-X\s+(\w+)`).FindStringSubmatch(line); m != nil {
				ex.method = m[1]
			}
			if m := regexp.MustCompile(`(?s)-d\s+'([^']*)'`).FindStringSubmatch(line); m != nil {
				ex.body = m[1]
			}
			out = append(out, ex)
			want = http.StatusOK
		}
	}
	return out
}

// TestAPIDocCurlExamples replays every curl example in docs/API.md
// against a live test server, so the documented requests cannot drift
// from the implementation.
func TestAPIDocCurlExamples(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "API.md"))
	if err != nil {
		t.Fatalf("read docs/API.md: %v", err)
	}
	examples := parseCurlExamples(t, string(doc))
	if len(examples) < 6 {
		t.Fatalf("only %d curl examples found in docs/API.md — parser or doc broken", len(examples))
	}

	// The sweep examples use /corpus and /tmp/sweep.jsonl as documented
	// placeholders; give them a real corpus and journal.
	corpus := t.TempDir()
	vuln := "module.exports = function(c){ require('child_process').exec(c) }\n"
	if err := os.WriteFile(filepath.Join(corpus, "a.js"), []byte(vuln), 0o644); err != nil {
		t.Fatal(err)
	}
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")

	_, ts := newTestServer(t, Options{Workers: 2})
	for i, ex := range examples {
		body := strings.ReplaceAll(ex.body, "/corpus", corpus)
		body = strings.ReplaceAll(body, "/tmp/sweep.jsonl", journal)
		req, err := http.NewRequest(ex.method, ts.URL+ex.path, strings.NewReader(body))
		if err != nil {
			t.Fatalf("example %d (%s %s): %v", i, ex.method, ex.path, err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("example %d (%s %s): %v", i, ex.method, ex.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != ex.want {
			t.Errorf("example %d: %s %s returned %d, want %d (body %q)",
				i, ex.method, ex.path, resp.StatusCode, ex.want, ex.body)
		}
	}
}
