package server

import (
	"net/http"
	"time"
)

// Degraded modes: the daemon's answer to a sick substrate.
//
// graphjsd's liveness is a three-state machine — healthy, degraded,
// draining — instead of a boolean. When the persistent store starts
// reporting write errors or corrupt entries, or the warm StatePool is
// evicting under its byte ceiling, failing scan requests would punish
// clients for the server's disk; instead the daemon transitions to
// degraded and keeps serving *cold* scans (correct, just slower),
// advertising the state on /v1/status, /healthz and /readyz so
// operators and load balancers can react. Degraded heals itself: after
// DegradedCooldown without a fresh fault signal the machine returns to
// healthy. Draining (entered by Drain, i.e. SIGTERM) is terminal.
//
// Every transition increments a "from->to" counter exposed in
// /v1/metrics, so a flapping substrate is visible as a number, not
// just a log grep.

// Health states reported by /v1/status, /healthz and /readyz.
const (
	HealthHealthy  = "healthy"
	HealthDegraded = "degraded"
	HealthDraining = "draining"
)

// setHealthLocked transitions the health machine, counting the edge.
// Caller holds s.mu. Draining is terminal: no edge leaves it.
func (s *Server) setHealthLocked(to, reason string) {
	if s.health == to || s.health == HealthDraining {
		return
	}
	s.transitions[s.health+"->"+to]++
	s.health = to
	s.healthReason = reason
}

// observeHealth folds fresh substrate signals into the health machine.
// It is called after every scan/sweep and from the status endpoints,
// so degradation is detected at the moment a request trips it and
// recovery happens even on an idle server being polled.
func (s *Server) observeHealth() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.health == HealthDraining {
		return
	}
	now := s.now()

	var reason string
	if s.opts.Store != nil {
		ss := s.opts.Store.Stats()
		if ss.WriteErrors > s.lastWriteErrors {
			reason = "store write errors (disk full or failing?)"
		} else if ss.Quarantined > s.lastQuarantined {
			reason = "store corruption quarantined"
		}
		s.lastWriteErrors = ss.WriteErrors
		s.lastQuarantined = ss.Quarantined
	}
	if reason == "" && s.pool != nil && s.opts.StateMaxBytes > 0 {
		_, evictedBytes := s.pool.Evictions()
		if evictedBytes > s.lastEvictedBytes {
			reason = "warm-state pool at byte ceiling, evicting"
		}
		s.lastEvictedBytes = evictedBytes
	}

	if reason != "" {
		s.degradedUntil = now.Add(s.opts.DegradedCooldown)
		s.setHealthLocked(HealthDegraded, reason)
		return
	}
	if s.health == HealthDegraded && !now.Before(s.degradedUntil) {
		s.setHealthLocked(HealthHealthy, "")
	}
}

// degraded reports whether the daemon is currently in degraded mode
// (warm state bypassed; scans run cold).
func (s *Server) degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.health == HealthDegraded
}

// healthSnapshot returns the current state, its reason, and a copy of
// the transition counters.
func (s *Server) healthSnapshot() (state, reason string, transitions map[string]int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	transitions = make(map[string]int64, len(s.transitions))
	for k, v := range s.transitions {
		transitions[k] = v
	}
	return s.health, s.healthReason, transitions
}

// handleHealthz is GET /healthz: process liveness. It answers 200 in
// every health state — degraded and draining daemons are still alive
// and must NOT be restarted by an orchestrator's liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	s.observeHealth()
	state, _, _ := s.healthSnapshot()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:   "ok",
		Health:   state,
		UptimeMs: float64(time.Since(s.start).Microseconds()) / 1000,
	})
}

// handleReadyz is GET /readyz: traffic readiness. Draining answers 503
// so load balancers stop routing here during shutdown; degraded stays
// 200 (the daemon still serves correct results, just cold) with the
// state in the body for balancers that weigh by content.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	s.observeHealth()
	state, reason, _ := s.healthSnapshot()
	resp := ReadyResponse{Ready: state != HealthDraining, Health: state, Reason: reason}
	status := http.StatusOK
	if !resp.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}
