package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/store"
	"repro/internal/sweepjournal"
)

// startHardenedServer serves s through the production transport path
// (Server.NewHTTPServer on a real listener) so chaos tests exercise the
// same timeouts cmd/graphjsd ships with. The returned stop function is
// an abrupt close — listener and live connections die immediately, no
// drain — which is exactly what a SIGKILL looks like from the handler's
// point of view.
func startHardenedServer(t *testing.T, s *Server, h HTTPOptions) (base string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := s.NewHTTPServer(ln.Addr().String(), h)
	go hs.Serve(ln)
	closed := false
	stop = func() {
		if !closed {
			closed = true
			hs.Close()
		}
	}
	t.Cleanup(stop)
	return "http://" + ln.Addr().String(), stop
}

// A slowloris connection — headers dribbling in forever — must be cut
// by ReadHeaderTimeout instead of pinning a goroutine, and must not
// starve well-behaved clients on the same listener.
func TestSlowlorisClosedByHeaderTimeout(t *testing.T) {
	s := New(Options{Workers: 1})
	base, _ := startHardenedServer(t, s, HTTPOptions{ReadHeaderTimeout: 300 * time.Millisecond})

	conn, err := net.Dial("tcp", strings.TrimPrefix(base, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Half a request: the header section never terminates.
	if _, err := conn.Write([]byte("POST /v1/scan HTTP/1.1\r\nHost: chaos\r\nX-Slow: ")); err != nil {
		t.Fatal(err)
	}

	// A healthy client is served while the slowloris clock runs.
	h := decodeResp[HealthResponse](t, getURL(t, base+"/healthz"), http.StatusOK)
	if h.Status != "ok" {
		t.Fatalf("healthz during slowloris = %+v", h)
	}

	// The server hangs up on the dribbler within the header timeout
	// (generous deadline; the point is it happens at all, not when).
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server answered a request whose headers never finished")
	} else if errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatal("slowloris connection still open after 10s; ReadHeaderTimeout not enforced")
	}
}

// chaosCorpus writes a small sweep corpus: vulnerable files, package
// directories, and a clean file, so journals carry a mix of finding
// shapes worth diffing.
func chaosCorpus(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"exec.js":       "module.exports = function(c){ require('child_process').exec(c) }\n",
		"evil.js":       "module.exports = function(c){ eval(c) }\n",
		"clean.js":      "module.exports = function(x){ return x + 1 }\n",
		"pkg/index.js":  "var run = require('./lib');\nmodule.exports = function(c){ run(c) }\n",
		"pkg/lib.js":    "const { execSync } = require('child_process');\nmodule.exports = function(c){ execSync(c) }\n",
		"deep/index.js": "module.exports = function(c){ new Function(c)() }\n",
	}
	for rel, src := range files {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// canonicalFindings renders a journal entry's findings in a stable
// order so two sweeps can be compared as sets.
func canonicalFindings(e sweepjournal.Entry) []string {
	out := make([]string, 0, len(e.Findings))
	for _, f := range e.Findings {
		out = append(out, fmt.Sprintf("%s|%s|%s:%d|%s", f.CWE, f.SinkName, f.SinkFile, f.SinkLine, f.Source))
	}
	sort.Strings(out)
	return out
}

// TestChaosServe is the resilience invariant end to end: a daemon under
// hostile traffic — slowloris, mid-body disconnects, oversized uploads,
// abandoned scans, panic bombs, an injected disk fault — may change its
// latency and status codes, but it must never change findings, and
// after an abrupt kill a restart on the same cache dir must sweep to a
// journal finding-equivalent to the pre-chaos baseline.
func TestChaosServe(t *testing.T) {
	corpus := chaosCorpus(t)
	cacheDir := filepath.Join(t.TempDir(), "cache")
	jBase := filepath.Join(t.TempDir(), "base.jsonl")
	jPost := filepath.Join(t.TempDir(), "post.jsonl")

	opts := Options{Workers: 4, QueueDepth: 32, DegradedCooldown: time.Hour}

	// ---- Baseline: sweep the corpus on a calm daemon. ----
	stBase, err := store.Open(cacheDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, tsBase := newTestServer(t, func() Options { o := opts; o.Store = stBase; return o }())
	sw := decodeResp[SweepResponse](t, postJSON(t, tsBase.URL+"/v1/sweep",
		SweepRequest{Path: corpus, Journal: jBase}), http.StatusOK)
	if sw.Completed != sw.Targets || sw.Findings == 0 {
		t.Fatalf("baseline sweep = %+v, want all targets completed with findings", sw)
	}
	baseline, torn, err := sweepjournal.Load(jBase)
	if err != nil || torn {
		t.Fatalf("baseline journal: torn=%v err=%v", torn, err)
	}

	// Expected per-source findings for the healthy clients' invariant.
	healthySrc := "module.exports = function(c){ require('child_process').exec(c) }\n"
	want := decodeResp[ScanResponse](t, postJSON(t, tsBase.URL+"/v1/scan",
		ScanRequest{Name: "calm", Source: healthySrc}), http.StatusOK)
	if len(want.Findings) == 0 {
		t.Fatal("calm scan found nothing; the invariant below would be vacuous")
	}
	tsBase.Close()
	if err := stBase.Close(); err != nil {
		t.Fatal(err)
	}

	// ---- The chaos daemon: fresh store session on the same cache dir,
	// served through the production hardened transport. A fresh session
	// matters: disk-fault ordinals count per session, so the injected
	// fault below deterministically hits this daemon's FIRST store
	// write, mid-storm. ----
	st1, err := store.Open(cacheDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srvA := New(func() Options { o := opts; o.Store = st1; return o }())
	base, kill := startHardenedServer(t, srvA, HTTPOptions{
		ReadHeaderTimeout: 500 * time.Millisecond,
		ReadTimeout:       10 * time.Second,
	})

	// ---- Chaos: hostile and healthy traffic interleaved. ----
	// "bomb" scans panic at their first budget checkpoint; the store's
	// first write during chaos hits a simulated disk fault (degrading
	// the daemon mid-storm).
	budget.SetFaultPlan(&budget.FaultPlan{
		Seed: 41, PanicProb: 1, DiskProb: 1, Spread: 1,
		Arm: func(label string) bool { return label == "bomb" || label == "store" },
	})
	defer budget.SetFaultPlan(nil)

	// Ghost scans hold their slot until the server observes the client's
	// disconnect (propagation is asynchronous; without this the scan can
	// finish clean before the transport notices), so the canceled
	// counter below is deterministic. The started channel lets each
	// ghost client cancel only once its request is actually in a
	// handler, never while still dialing.
	ghostStarted := make(chan struct{}, 8)
	testHookScanning = func(name string, ctx context.Context) {
		if strings.HasPrefix(name, "ghost") {
			select {
			case ghostStarted <- struct{}{}:
			default:
			}
			select {
			case <-ctx.Done():
			case <-time.After(10 * time.Second):
			}
		}
	}

	var mu sync.Mutex
	var violations []string
	violate := func(format string, args ...any) {
		mu.Lock()
		violations = append(violations, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	var wg sync.WaitGroup
	hostile := func(f func(i int)) {
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func(i int) { defer wg.Done(); f(i) }(i)
		}
	}

	// Slowloris: dribbling headers, cut by the transport.
	hostile(func(i int) {
		conn, err := net.Dial("tcp", strings.TrimPrefix(base, "http://"))
		if err != nil {
			return
		}
		defer conn.Close()
		conn.Write([]byte("GET /v1/status HTTP/1.1\r\nHost: chaos\r\n"))
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		buf := make([]byte, 64)
		if _, err := conn.Read(buf); errors.Is(err, os.ErrDeadlineExceeded) {
			violate("slowloris %d: connection survived 10s", i)
		}
	})
	// Mid-body disconnect: valid JSON start, then the client dies.
	hostile(func(i int) {
		pr, pw := io.Pipe()
		go func() {
			pw.Write([]byte(`{"name":"half","source":"module.`))
			time.Sleep(20 * time.Millisecond)
			pw.CloseWithError(errors.New("client died mid-body"))
		}()
		resp, err := http.Post(base+"/v1/scan", "application/json", pr)
		if err == nil {
			resp.Body.Close()
		}
	})
	// Oversized upload: must be a structured 413, never an accepted scan.
	var big bytes.Buffer
	big.WriteString(`{"name":"big","source":"`)
	big.Write(bytes.Repeat([]byte("a"), maxBodyBytes+1024))
	big.WriteString(`"}`)
	hostile(func(i int) {
		resp, err := http.Post(base+"/v1/scan", "application/json", bytes.NewReader(big.Bytes()))
		if err != nil {
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			violate("oversized upload %d was accepted", i)
		}
	})
	// Abandoned scans: clients that cancel mid-flight.
	hostile(func(i int) {
		ctx, cancel := context.WithCancel(context.Background())
		done := cancelableScan(t, ctx, base, ScanRequest{Name: fmt.Sprintf("ghost%d", i), Source: heavySource()})
		select {
		case <-ghostStarted:
		case <-time.After(10 * time.Second):
		}
		cancel()
		<-done
	})
	// Panic bombs: content that kills its scan every time. The fences
	// classify the panic (200 + failure, or 429 once quarantined); a
	// clean verdict would mean a fence lost the panic.
	hostile(func(i int) {
		resp := postJSON(t, base+"/v1/scan", ScanRequest{Name: "bomb", Source: "module.exports = 0;\n"})
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return
		}
		got := decodeResp[ScanResponse](t, resp, http.StatusOK)
		if got.Failure == "" {
			violate("panic bomb %d reported a clean scan", i)
		}
	})
	// Healthy clients riding through the storm: every response must be
	// a 200 with exactly the calm-daemon findings.
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				name := fmt.Sprintf("healthy-%d-%d", c, i)
				// The salt comment changes nothing about the analysis but
				// makes every upload unique content, so each scan exercises
				// fresh store writes (where the disk fault is waiting).
				src := fmt.Sprintf("// %s\n%s", name, healthySrc)
				resp := postJSON(t, base+"/v1/scan", ScanRequest{Name: name, Source: src})
				if resp.StatusCode != http.StatusOK {
					violate("healthy scan %s: status %d", name, resp.StatusCode)
					resp.Body.Close()
					continue
				}
				got := decodeResp[ScanResponse](t, resp, http.StatusOK)
				if len(got.Findings) != len(want.Findings) {
					violate("healthy scan %s: %d findings, want %d", name, len(got.Findings), len(want.Findings))
				}
			}
		}(c)
	}
	wg.Wait()
	// Handlers can outlive their clients (a canceled Do returns while
	// the server-side scan is still unwinding); wait for the pool to
	// empty before touching the shared test hook again.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := decodeResp[StatusResponse](t, getURL(t, base+"/v1/status"), http.StatusOK)
		if st.Running == 0 && st.Queued == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never drained after chaos: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	testHookScanning = nil
	if len(violations) > 0 {
		t.Fatalf("chaos invariant violated:\n  %s", strings.Join(violations, "\n  "))
	}

	// The storm left its marks in the right places: canceled clients
	// counted, the disk fault degraded the daemon, and /readyz still
	// advertises readiness (degraded serves, draining doesn't).
	m := decodeResp[MetricsResponse](t, getURL(t, base+"/v1/metrics"), http.StatusOK)
	if m.Canceled == 0 {
		t.Fatal("no canceled requests recorded despite abandoned clients")
	}
	if m.HealthTransitions["healthy->degraded"] == 0 {
		t.Fatalf("disk fault never degraded the daemon: transitions=%+v store=%+v", m.HealthTransitions, m.Store)
	}
	r := decodeResp[ReadyResponse](t, getURL(t, base+"/readyz"), http.StatusOK)
	if !r.Ready {
		t.Fatalf("daemon unready after chaos: %+v", r)
	}

	// ---- Abrupt kill and restart on the same cache dir. ----
	budget.SetFaultPlan(nil)
	kill() // listener and connections die; no Drain, no store sync
	// The handlers' slots drain on their own (their clients are gone);
	// wait so closing the store below cannot race an in-flight write.
	deadline = time.Now().Add(10 * time.Second)
	for len(srvA.slots) > 0 || len(srvA.queue) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("run slots never drained after kill")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := st1.Close(); err != nil {
		t.Fatalf("close store after kill: %v", err)
	}

	st2 := openServerStore(t, cacheDir)
	_, ts2 := newTestServer(t, func() Options { o := opts; o.Store = st2; return o }())
	sw2 := decodeResp[SweepResponse](t, postJSON(t, ts2.URL+"/v1/sweep",
		SweepRequest{Path: corpus, Journal: jPost}), http.StatusOK)
	if sw2.Completed != sw2.Targets {
		t.Fatalf("post-chaos sweep = %+v, want all targets completed", sw2)
	}
	post, torn, err := sweepjournal.Load(jPost)
	if err != nil || torn {
		t.Fatalf("post-chaos journal: torn=%v err=%v", torn, err)
	}

	// The invariant: chaos and a kill changed nothing about what the
	// analysis reports.
	if len(post) != len(baseline) {
		t.Fatalf("post-chaos journal has %d entries, baseline %d", len(post), len(baseline))
	}
	for name, b := range baseline {
		p, ok := post[name]
		if !ok {
			t.Fatalf("target %s missing from post-chaos journal", name)
		}
		if p.State != b.State {
			t.Fatalf("target %s state %q, baseline %q", name, p.State, b.State)
		}
		bf, pf := canonicalFindings(b), canonicalFindings(p)
		if strings.Join(bf, "\n") != strings.Join(pf, "\n") {
			t.Fatalf("target %s findings diverged after chaos+restart:\nbaseline: %v\npost:     %v", name, bf, pf)
		}
	}
}
