// Command graphjslint runs the repo-invariant lint suite over the
// given directories (default: internal and cmd). It exits nonzero when
// any check fires; see internal/lint for the checks and the
// //lint:allow waiver syntax.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: graphjslint [dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"internal", "cmd"}
	}
	findings, err := lint.Dirs(roots...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphjslint: %v\n", err)
		os.Exit(2)
	}
	docs, err := lint.PackageDocs(roots...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphjslint: %v\n", err)
		os.Exit(2)
	}
	findings = append(findings, docs...)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "graphjslint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
