// Command graphjsd runs the MDG vulnerability scanner as a long-lived
// HTTP/JSON service: concurrent scans from one static binary, with
// admission control, warm incremental state shared across requests,
// and journal-backed resumable corpus sweeps.
//
// See docs/API.md for the endpoint reference and docs/OPERATIONS.md
// for deployment and tuning guidance.
//
// Usage:
//
//	graphjsd [flags]
//
// Flags:
//
//	-addr string      listen address (default "127.0.0.1:8044")
//	-workers int      concurrent scan slots (default GOMAXPROCS)
//	-queue int        admitted requests that may wait for a slot
//	                  (default 2×workers; negative = shed immediately)
//	-retry-after dur  Retry-After hint on 429 responses (default 1s)
//	-engine string    default detection engine (default "query")
//	-timeout dur      default per-request scan timeout (default 5m)
//	-max-timeout dur  ceiling a request may raise its timeout to
//	-steps/-nodes/-edges int          default per-request budget caps
//	-max-steps/-max-nodes/-max-edges  ceilings requests are clamped to
//	-no-warm-state    disable the process-wide incremental StatePool
//
// SIGINT/SIGTERM stop the listener, drain in-flight scans (new
// requests get 503), flush journals, and exit 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/scanner"
	"repro/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8044", "listen address")
		workers    = flag.Int("workers", 0, "concurrent scan slots (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 0, "admission queue depth (0 = 2x workers, negative = none)")
		retryAfter = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		engine     = flag.String("engine", "query", "default engine: query, native, differential, fallback")
		timeout    = flag.Duration("timeout", 5*time.Minute, "default per-request scan timeout")
		maxTimeout = flag.Duration("max-timeout", 0, "ceiling for per-request timeouts (0 = default timeout)")
		steps      = flag.Int("steps", 0, "default per-request abstract-interpretation step cap (0 = unlimited)")
		nodes      = flag.Int("nodes", 0, "default per-request MDG node cap (0 = unlimited)")
		edges      = flag.Int("edges", 0, "default per-request MDG edge cap (0 = unlimited)")
		maxSteps   = flag.Int("max-steps", 0, "ceiling for per-request step caps (0 = unlimited)")
		maxNodes   = flag.Int("max-nodes", 0, "ceiling for per-request node caps (0 = unlimited)")
		maxEdges   = flag.Int("max-edges", 0, "ceiling for per-request edge caps (0 = unlimited)")
		noWarm     = flag.Bool("no-warm-state", false, "disable the process-wide incremental StatePool")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "graphjsd: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}
	eng, err := scanner.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphjsd: %v\n", err)
		os.Exit(2)
	}

	srv := server.New(server.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		RetryAfter:     *retryAfter,
		Engine:         eng,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		DefaultSteps:   *steps,
		DefaultNodes:   *nodes,
		DefaultEdges:   *edges,
		MaxSteps:       *maxSteps,
		MaxNodes:       *maxNodes,
		MaxEdges:       *maxEdges,
		NoWarmState:    *noWarm,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		defer close(done)
		got := <-sig
		log.Printf("graphjsd: %s: stopping listener, draining in-flight scans", got)
		// Shutdown stops accepting connections and waits for active
		// handlers; Drain additionally blocks admission so requests
		// racing the shutdown get a clean 503 instead of a reset.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
		defer cancel()
		srv.Drain()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("graphjsd: shutdown: %v", err)
		}
		log.Printf("graphjsd: drained, exiting")
	}()

	log.Printf("graphjsd: listening on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("graphjsd: %v", err)
	}
	<-done
}
