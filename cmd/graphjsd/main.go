// Command graphjsd runs the MDG vulnerability scanner as a long-lived
// HTTP/JSON service: concurrent scans from one static binary, with
// admission control, warm incremental state shared across requests,
// and journal-backed resumable corpus sweeps.
//
// See docs/API.md for the endpoint reference and docs/OPERATIONS.md
// for deployment and tuning guidance.
//
// Usage:
//
//	graphjsd [flags]
//
// Flags:
//
//	-addr string      listen address (default "127.0.0.1:8044")
//	-workers int      concurrent scan slots (default GOMAXPROCS)
//	-queue int        admitted requests that may wait for a slot
//	                  (default 2×workers; negative = shed immediately)
//	-retry-after dur  Retry-After hint on 429 responses (default 1s)
//	-engine string    default detection engine (default "query")
//	-timeout dur      default per-request scan timeout (default 5m)
//	-max-timeout dur  ceiling a request may raise its timeout to
//	-steps/-nodes/-edges int          default per-request budget caps
//	-max-steps/-max-nodes/-max-edges  ceilings requests are clamped to
//	-no-warm-state    disable the process-wide incremental StatePool
//	-state-max-entries int  LRU-evict warm state beyond this many packages
//	-state-max-bytes int    LRU-evict warm state beyond this estimated size
//	-cache-dir string       persistent analysis store directory: warm state
//	                        survives restarts; replicas may share it
//	                        read-only (see docs/OPERATIONS.md)
//	-cache-read-only        open -cache-dir as a lock-free read-only replica
//	-no-fsync               skip journal/store fsyncs (benchmarks only)
//
// Transport hardening (negative duration / size disables; see
// docs/OPERATIONS.md for tuning):
//
//	-read-header-timeout dur  close clients that dribble headers
//	                          (slowloris defense; default 10s)
//	-read-timeout dur         full-request read bound (default 2m)
//	-write-timeout dur        response write bound (default
//	                          max-timeout+30s; sweeps exempt themselves)
//	-idle-timeout dur         keep-alive idle bound (default 2m)
//	-max-header-bytes int     request header cap (default 64 KiB)
//
// Resilience (see docs/OPERATIONS.md for the runbook):
//
//	-breaker-strikes int    panic/timeout strikes before a content hash
//	                        is quarantined (default 3; negative disables)
//	-breaker-cooldown dur   quarantine window before a half-open probe
//	                        (default 30s)
//	-engine-break-window int  rolling native-outcome sample window
//	                          (default 20)
//	-engine-break-rate float  native panic rate that pins the fallback
//	                          engine (default 0.5; negative disables)
//	-degraded-cooldown dur  how long degraded mode lingers after the
//	                        last substrate fault (default 30s)
//
// SIGINT/SIGTERM stop the listener, drain in-flight scans (new
// requests get 503), flush journals, sync and close the store, and
// exit 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/scanner"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8044", "listen address")
		workers    = flag.Int("workers", 0, "concurrent scan slots (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 0, "admission queue depth (0 = 2x workers, negative = none)")
		retryAfter = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		engine     = flag.String("engine", "query", "default engine: query, native, differential, fallback")
		timeout    = flag.Duration("timeout", 5*time.Minute, "default per-request scan timeout")
		maxTimeout = flag.Duration("max-timeout", 0, "ceiling for per-request timeouts (0 = default timeout)")
		steps      = flag.Int("steps", 0, "default per-request abstract-interpretation step cap (0 = unlimited)")
		nodes      = flag.Int("nodes", 0, "default per-request MDG node cap (0 = unlimited)")
		edges      = flag.Int("edges", 0, "default per-request MDG edge cap (0 = unlimited)")
		maxSteps   = flag.Int("max-steps", 0, "ceiling for per-request step caps (0 = unlimited)")
		maxNodes   = flag.Int("max-nodes", 0, "ceiling for per-request node caps (0 = unlimited)")
		maxEdges   = flag.Int("max-edges", 0, "ceiling for per-request edge caps (0 = unlimited)")
		noWarm     = flag.Bool("no-warm-state", false, "disable the process-wide incremental StatePool")
		stateMax   = flag.Int("state-max-entries", 0, "LRU cap on warm StatePool packages (0 = unbounded)")
		stateBytes = flag.Int64("state-max-bytes", 0, "LRU cap on estimated warm StatePool bytes (0 = unbounded)")
		cacheDir   = flag.String("cache-dir", "", "persistent analysis store directory (empty = memory-only)")
		cacheRO    = flag.Bool("cache-read-only", false, "open -cache-dir as a read-only replica (no writer lock)")
		noFsync    = flag.Bool("no-fsync", false, "skip journal/store fsyncs (benchmarks only; crash may lose cache entries)")

		readHeaderTimeout = flag.Duration("read-header-timeout", 0, "bound on reading request headers (0 = 10s; negative disables)")
		readTimeout       = flag.Duration("read-timeout", 0, "bound on reading the full request (0 = 2m; negative disables)")
		writeTimeout      = flag.Duration("write-timeout", 0, "bound on writing the response (0 = max-timeout+30s; negative disables)")
		idleTimeout       = flag.Duration("idle-timeout", 0, "bound on idle keep-alive connections (0 = 2m; negative disables)")
		maxHeaderBytes    = flag.Int("max-header-bytes", 0, "request header size cap (0 = 64 KiB; negative = stdlib default)")

		breakerStrikes    = flag.Int("breaker-strikes", 0, "panic/timeout strikes before content is quarantined (0 = 3; negative disables)")
		breakerCooldown   = flag.Duration("breaker-cooldown", 0, "quarantine window before a half-open probe (0 = 30s)")
		engineBreakWindow = flag.Int("engine-break-window", 0, "rolling native-engine outcome window (0 = 20)")
		engineBreakRate   = flag.Float64("engine-break-rate", 0, "native panic rate that pins the fallback engine (0 = 0.5; negative disables)")
		degradedCooldown  = flag.Duration("degraded-cooldown", 0, "degraded-mode linger after the last substrate fault (0 = 30s)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "graphjsd: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}
	eng, err := scanner.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphjsd: %v\n", err)
		os.Exit(2)
	}
	var st *store.Store
	if *cacheDir != "" {
		st, err = store.Open(*cacheDir, store.Options{ReadOnly: *cacheRO, NoFsync: *noFsync})
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphjsd: open cache %s: %v\n", *cacheDir, err)
			os.Exit(2)
		}
		ss := st.Stats()
		log.Printf("graphjsd: cache %s: %d entries, %d bytes (read-only=%v)",
			*cacheDir, ss.Entries, ss.Bytes, *cacheRO)
	}

	srv := server.New(server.Options{
		Workers:         *workers,
		QueueDepth:      *queue,
		RetryAfter:      *retryAfter,
		Engine:          eng,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		DefaultSteps:    *steps,
		DefaultNodes:    *nodes,
		DefaultEdges:    *edges,
		MaxSteps:        *maxSteps,
		MaxNodes:        *maxNodes,
		MaxEdges:        *maxEdges,
		NoWarmState:     *noWarm,
		StateMaxEntries: *stateMax,
		StateMaxBytes:   *stateBytes,
		Store:           st,
		NoFsync:         *noFsync,

		BreakerStrikes:    *breakerStrikes,
		BreakerCooldown:   *breakerCooldown,
		EngineBreakWindow: *engineBreakWindow,
		EngineBreakRate:   *engineBreakRate,
		DegradedCooldown:  *degradedCooldown,
	})
	httpSrv := srv.NewHTTPServer(*addr, server.HTTPOptions{
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    *maxHeaderBytes,
	})

	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		defer close(done)
		got := <-sig
		log.Printf("graphjsd: %s: stopping listener, draining in-flight scans", got)
		// Shutdown stops accepting connections and waits for active
		// handlers; Drain additionally blocks admission so requests
		// racing the shutdown get a clean 503 instead of a reset.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
		defer cancel()
		srv.Drain()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("graphjsd: shutdown: %v", err)
		}
		// In-flight work is done; a final sync-and-close makes every
		// cached analysis durable for the next warm restart.
		if st != nil {
			if err := st.Close(); err != nil {
				log.Printf("graphjsd: close cache: %v", err)
			}
		}
		log.Printf("graphjsd: drained, exiting")
	}()

	log.Printf("graphjsd: listening on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("graphjsd: %v", err)
	}
	<-done
}
