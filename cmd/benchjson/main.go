// Command benchjson converts `go test -bench` output on stdin into
// JSON-lines benchmark snapshots, one object per benchmark result:
//
//	go test -run xxx -bench ParallelSweep -benchtime 1x . | benchjson -out BENCH_parallel.json
//
// Each line records the benchmark name, iteration count, ns/op, any
// extra metrics (e.g. the sweep's cpu/wall ratio), the host's
// GOMAXPROCS, and a timestamp. With -out FILE the lines are appended
// to FILE (the perf-trajectory log `make bench` maintains); otherwise
// they go to stdout. Non-benchmark lines are passed through to stderr
// so failures stay visible.
//
// -serve additionally validates the scan-service snapshot (`make
// bench-serve` → BENCH_serve.json): the input must contain the
// BenchmarkServeScan result with its cold-ms, warm-ms, speedup,
// p50-ms and p95-ms metrics, and the warm path must beat cold by at
// least 2× (the daemon's StatePool acceptance bar). A missing metric
// or a speedup below the bar is a non-zero exit, so CI catches a
// regressed or silently skipped serve benchmark.
//
// -store likewise validates the persistent-store snapshot (`make
// bench-store` → BENCH_store.json): the BenchmarkStoreRestart result
// must carry cold-ms, warm-ms and speedup, and a restart from a
// populated -cache-dir must beat a cold sweep by at least 2× (the
// warm-restart acceptance bar from the store design).
//
// -deps validates the dependency-tree snapshot (`make bench-deps` →
// BENCH_deps.json): the BenchmarkDepsRescan result must carry
// cold-ms, warm-ms and speedup, and a warm tree re-scan after editing
// one dependency (only that package's fragment rebuilds) must beat the
// cold tree scan by at least 2×.
//
// -resilience validates the hostile-traffic snapshot (`make
// bench-resilience` → BENCH_resilience.json): the
// BenchmarkServeResilience result must carry healthy-p95-ms,
// hostile-p95-ms and degradation, and the p95 latency of healthy
// clients while 25% of the fleet is hostile must stay within 2× of the
// all-healthy baseline (the daemon-resilience acceptance bar).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Snapshot is one benchmark measurement.
type Snapshot struct {
	Time       string             `json:"time"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Benchmark  string             `json:"benchmark"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("out", "", "append JSON lines to this file (default stdout)")
	serve := flag.Bool("serve", false, "validate the BenchmarkServeScan snapshot (cold/warm/percentile metrics, warm ≥2× cold)")
	storeCheck := flag.Bool("store", false, "validate the BenchmarkStoreRestart snapshot (cold/warm metrics, store-warm restart ≥2× cold)")
	depsCheck := flag.Bool("deps", false, "validate the BenchmarkDepsRescan snapshot (cold/warm metrics, one-dep-edited tree re-scan ≥2× cold)")
	resilience := flag.Bool("resilience", false, "validate the BenchmarkServeResilience snapshot (healthy/hostile p95 metrics, degradation ≤2×)")
	flag.Parse()

	w := os.Stdout
	var outFile *os.File
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		outFile = f
		w = f
	}

	enc := json.NewEncoder(w)
	now := time.Now().UTC().Format(time.RFC3339)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	var snaps []Snapshot
	for sc.Scan() {
		line := sc.Text()
		snap, ok := parseBenchLine(line)
		if !ok {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		snap.Time = now
		snap.GoMaxProcs = runtime.GOMAXPROCS(0)
		if err := enc.Encode(snap); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		snaps = append(snaps, snap)
		n++
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if n == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	// The snapshot log is an append-only perf trajectory: a close error
	// here means lines may be missing, which must fail loudly rather
	// than leave a silently truncated BENCH_*.json.
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	if *serve {
		if err := validateServe(snaps); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: -serve:", err)
			os.Exit(1)
		}
	}
	if *storeCheck {
		if err := validateStore(snaps); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: -store:", err)
			os.Exit(1)
		}
	}
	if *depsCheck {
		if err := validateDeps(snaps); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: -deps:", err)
			os.Exit(1)
		}
	}
	if *resilience {
		if err := validateResilience(snaps); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: -resilience:", err)
			os.Exit(1)
		}
	}
}

// serveSpeedupFloor is the acceptance bar for the warm StatePool path:
// a warm re-submission must beat a cold scan by at least this factor.
const serveSpeedupFloor = 2.0

// validateServe checks the serve benchmark produced every metric the
// BENCH_serve.json snapshot promises and that warm reuse clears the
// speedup floor.
func validateServe(snaps []Snapshot) error {
	for _, s := range snaps {
		if !strings.HasPrefix(s.Benchmark, "BenchmarkServeScan") {
			continue
		}
		for _, m := range []string{"cold-ms", "warm-ms", "speedup", "p50-ms", "p95-ms"} {
			if _, ok := s.Metrics[m]; !ok {
				return fmt.Errorf("%s is missing metric %q", s.Benchmark, m)
			}
		}
		if sp := s.Metrics["speedup"]; sp < serveSpeedupFloor {
			return fmt.Errorf("warm speedup %.2fx below the %.1fx floor (cold %.3fms, warm %.3fms)",
				sp, serveSpeedupFloor, s.Metrics["cold-ms"], s.Metrics["warm-ms"])
		}
		return nil
	}
	return fmt.Errorf("no BenchmarkServeScan result on stdin")
}

// storeSpeedupFloor is the acceptance bar for warm restarts: a fresh
// process sweeping from a populated -cache-dir must beat the same
// sweep cold by at least this factor.
const storeSpeedupFloor = 2.0

// validateStore checks the store-restart benchmark produced the
// metrics the BENCH_store.json snapshot promises and that the
// store-warm restart clears the speedup floor.
func validateStore(snaps []Snapshot) error {
	for _, s := range snaps {
		if !strings.HasPrefix(s.Benchmark, "BenchmarkStoreRestart") {
			continue
		}
		for _, m := range []string{"cold-ms", "warm-ms", "speedup"} {
			if _, ok := s.Metrics[m]; !ok {
				return fmt.Errorf("%s is missing metric %q", s.Benchmark, m)
			}
		}
		if sp := s.Metrics["speedup"]; sp < storeSpeedupFloor {
			return fmt.Errorf("store-warm restart speedup %.2fx below the %.1fx floor (cold %.3fms, warm %.3fms)",
				sp, storeSpeedupFloor, s.Metrics["cold-ms"], s.Metrics["warm-ms"])
		}
		return nil
	}
	return fmt.Errorf("no BenchmarkStoreRestart result on stdin")
}

// depsSpeedupFloor is the acceptance bar for warm tree re-scans: after
// editing one dependency, a re-scan that rebuilds only that package's
// fragment must beat the cold whole-tree scan by at least this factor.
const depsSpeedupFloor = 2.0

// validateDeps checks the dependency-tree rescan benchmark produced
// the metrics the BENCH_deps.json snapshot promises and that the warm
// one-dep-edited re-scan clears the speedup floor.
func validateDeps(snaps []Snapshot) error {
	for _, s := range snaps {
		if !strings.HasPrefix(s.Benchmark, "BenchmarkDepsRescan") {
			continue
		}
		for _, m := range []string{"cold-ms", "warm-ms", "speedup"} {
			if _, ok := s.Metrics[m]; !ok {
				return fmt.Errorf("%s is missing metric %q", s.Benchmark, m)
			}
		}
		if sp := s.Metrics["speedup"]; sp < depsSpeedupFloor {
			return fmt.Errorf("warm tree re-scan speedup %.2fx below the %.1fx floor (cold %.3fms, warm %.3fms)",
				sp, depsSpeedupFloor, s.Metrics["cold-ms"], s.Metrics["warm-ms"])
		}
		return nil
	}
	return fmt.Errorf("no BenchmarkDepsRescan result on stdin")
}

// degradationCeiling is the acceptance bar for daemon resilience: the
// p95 latency healthy clients see while a quarter of the fleet is
// hostile may be at most this multiple of the all-healthy baseline.
const degradationCeiling = 2.0

// validateResilience checks the hostile-traffic benchmark produced the
// metrics the BENCH_resilience.json snapshot promises and that hostile
// neighbors stayed under the degradation ceiling.
func validateResilience(snaps []Snapshot) error {
	for _, s := range snaps {
		if !strings.HasPrefix(s.Benchmark, "BenchmarkServeResilience") {
			continue
		}
		for _, m := range []string{"healthy-p95-ms", "hostile-p95-ms", "degradation"} {
			if _, ok := s.Metrics[m]; !ok {
				return fmt.Errorf("%s is missing metric %q", s.Benchmark, m)
			}
		}
		if d := s.Metrics["degradation"]; d > degradationCeiling {
			return fmt.Errorf("hostile-traffic p95 degradation %.2fx above the %.1fx ceiling (healthy %.3fms, hostile %.3fms)",
				d, degradationCeiling, s.Metrics["healthy-p95-ms"], s.Metrics["hostile-p95-ms"])
		}
		return nil
	}
	return fmt.Errorf("no BenchmarkServeResilience result on stdin")
}

// parseBenchLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkParallelSweep/workers=4  1  567277340 ns/op  2.036 cpu/wall
func parseBenchLine(line string) (Snapshot, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Snapshot{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Snapshot{}, false
	}
	snap := Snapshot{Benchmark: fields[0], Iterations: iters}
	// The remainder alternates value/unit pairs.
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Snapshot{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			snap.NsPerOp = v
			seen = true
			continue
		}
		if snap.Metrics == nil {
			snap.Metrics = map[string]float64{}
		}
		snap.Metrics[unit] = v
	}
	return snap, seen
}
