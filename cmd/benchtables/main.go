// Command benchtables regenerates every table and figure of the
// paper's evaluation (§5) on the synthetic corpora:
//
//	benchtables -table 3      dataset composition (Table 3)
//	benchtables -table 4      effectiveness vs baseline (Table 4)
//	benchtables -figure 6     detection Venn diagram (Figure 6)
//	benchtables -table 5      wild-corpus findings (Table 5)
//	benchtables -figure 7     analysis-time CDF (Figure 7)
//	benchtables -table 6      per-phase timing (Table 6)
//	benchtables -table 7      graph sizes by LoC (Table 7)
//	benchtables -sweep        worker-pool scaling (1/2/4/8 workers)
//	benchtables -faults       failure-class counts on the crash corpus
//	benchtables -all          everything
//
// Corpus scans run on a bounded worker pool; -workers N bounds it
// (default GOMAXPROCS). Results are printed with the paper's reference
// values alongside the measured ones where applicable.
//
// With -journal FILE the ground-truth sweeps run supervised: each
// worker appends its package's terminal outcome (after the
// retry/degradation ladder) to FILE-graphjs.jsonl / FILE-odgen.jsonl
// as it finishes, and -resume skips packages already journaled under
// the same content hash and options. Resumed rows carry findings and
// classification but no timings, so timing tables reflect only the
// packages actually re-scanned.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/budget"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/odgen"
	"repro/internal/poc"
	"repro/internal/queries"
	"repro/internal/scanner"
)

func main() {
	table := flag.Int("table", 0, "table number to regenerate (3-7)")
	figure := flag.Int("figure", 0, "figure number to regenerate (6 or 7)")
	all := flag.Bool("all", false, "regenerate everything")
	seed := flag.Int64("seed", 42, "corpus generation seed")
	collectedN := flag.Int("collected", 800, "size of the Collected-style corpus")
	workers := flag.Int("workers", 0, "worker-pool size for corpus sweeps (0 = GOMAXPROCS)")
	sweep := flag.Bool("sweep", false, "print worker-pool scaling (1/2/4/8 workers)")
	faults := flag.Bool("faults", false, "print failure-class counts on the crash corpus")
	provenance := flag.Bool("provenance", false, "print the reach-gate precision table (pruned %, gate-skip rate, provenance depth) gated vs ungated")
	journal := flag.String("journal", "", "supervise the ground-truth sweeps and journal outcomes to FILE-graphjs.jsonl / FILE-odgen.jsonl")
	resume := flag.Bool("resume", false, "with -journal: skip packages whose journal entry matches")
	requarantine := flag.Bool("requarantine", false, "with -resume: re-scan quarantined packages")
	flag.Parse()

	r := newRunner(*seed, *collectedN)
	r.workers = *workers
	r.journal = *journal
	r.resume = *resume
	r.requarantine = *requarantine
	switch {
	case *sweep:
		r.sweepTable()
	case *faults:
		r.faultsTable()
	case *provenance:
		r.provenanceTable()
	case *all:
		r.table3()
		r.table4()
		r.figure6()
		r.table5()
		r.figure7()
		r.table6()
		r.table7()
		r.provenanceTable()
	case *table == 3:
		r.table3()
	case *table == 4:
		r.table4()
	case *table == 5:
		r.table5()
	case *table == 6:
		r.table6()
	case *table == 7:
		r.table7()
	case *figure == 6:
		r.figure6()
	case *figure == 7:
		r.figure7()
	default:
		flag.Usage()
		os.Exit(2)
	}
}

type runner struct {
	seed       int64
	collectedN int
	workers    int

	journal      string // journal path prefix ("" = unsupervised sweeps)
	resume       bool
	requarantine bool

	vulcan, secbench, combined *dataset.Corpus

	gjs, odg   []metrics.PackageResult
	gOut, oOut *metrics.Outcome
	ran        bool
}

func newRunner(seed int64, collectedN int) *runner {
	vul, sec := dataset.GroundTruth(seed)
	combined := &dataset.Corpus{Name: "combined"}
	combined.Packages = append(combined.Packages, vul.Packages...)
	combined.Packages = append(combined.Packages, sec.Packages...)
	return &runner{seed: seed, collectedN: collectedN, vulcan: vul, secbench: sec, combined: combined}
}

// superviseOpts derives the supervised-sweep options for one tool's
// journal (distinct files per tool: the journal keys entries by
// package name, and both tools sweep the same corpus).
func (r *runner) superviseOpts(tool string) metrics.SuperviseOptions {
	return metrics.SuperviseOptions{
		JournalPath:  strings.TrimSuffix(r.journal, ".jsonl") + "-" + tool + ".jsonl",
		Resume:       r.resume,
		Requarantine: r.requarantine,
	}
}

func reportSupervised(tool string, stats *metrics.SuperviseStats, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtables: %s journal: %v\n", tool, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "  supervised: %d complete, %d degraded, %d quarantined, %d resumed\n",
		stats.Completed, stats.Degraded, stats.Quarantined, stats.Resumed)
}

// run executes both tools over the ground truth once (memoized). With
// -journal the sweeps run supervised: each worker appends its
// package's terminal outcome to the tool's journal as it finishes, and
// -resume skips the packages already journaled.
func (r *runner) run() {
	if r.ran {
		return
	}
	fmt.Fprintf(os.Stderr, "scanning %d packages with Graph.js...\n", len(r.combined.Packages))
	var gs *metrics.Sweep
	if r.journal != "" {
		var stats *metrics.SuperviseStats
		var err error
		gs, stats, err = metrics.SuperviseGraphJS(r.combined, scanner.Options{Workers: r.workers}, r.superviseOpts("graphjs"))
		reportSupervised("Graph.js", stats, err)
	} else {
		gs = metrics.SweepGraphJS(r.combined, scanner.Options{Workers: r.workers})
	}
	r.gjs = gs.Results
	fmt.Fprintf(os.Stderr, "  %d workers: wall %s, cpu %s (%.2fx)\n",
		gs.Workers, gs.Wall.Round(time.Millisecond), gs.CPU.Round(time.Millisecond), gs.Speedup())
	fmt.Fprintf(os.Stderr, "scanning %d packages with the ODGen-style baseline...\n", len(r.combined.Packages))
	od := odgen.DefaultOptions()
	od.Workers = r.workers
	var osw *metrics.Sweep
	if r.journal != "" {
		var stats *metrics.SuperviseStats
		var err error
		osw, stats, err = metrics.SuperviseODGen(r.combined, od, r.superviseOpts("odgen"))
		reportSupervised("ODGen*", stats, err)
	} else {
		osw = metrics.SweepODGen(r.combined, od)
	}
	r.odg = osw.Results
	fmt.Fprintf(os.Stderr, "  %d workers: wall %s, cpu %s (%.2fx)\n",
		osw.Workers, osw.Wall.Round(time.Millisecond), osw.CPU.Round(time.Millisecond), osw.Speedup())
	r.gOut = metrics.Evaluate("Graph.js", r.gjs, false)
	r.oOut = metrics.Evaluate("ODGen*", r.odg, true)
	r.ran = true
}

// sweepTable measures the ground-truth Graph.js sweep at 1/2/4/8
// workers (the EXPERIMENTS.md scaling table) and cross-checks that
// every worker count reports the same findings.
func (r *runner) sweepTable() {
	fmt.Println("== Worker-pool scaling: Graph.js over the ground-truth corpus ==")
	var rows [][]string
	var baseline *metrics.Sweep
	for _, w := range []int{1, 2, 4, 8} {
		sw := metrics.SweepGraphJS(r.combined, scanner.Options{Workers: w})
		if baseline == nil {
			baseline = sw
		}
		rows = append(rows, []string{
			fmt.Sprint(sw.Workers),
			metrics.FmtDur(sw.Wall),
			metrics.FmtDur(sw.CPU),
			fmt.Sprintf("%.2fx", sw.Speedup()),
			fmt.Sprintf("%.2fx", float64(baseline.Wall)/float64(sw.Wall)),
			fmt.Sprint(sameFindings(baseline.Results, sw.Results)),
		})
	}
	fmt.Print(metrics.Table(
		[]string{"workers", "wall", "sum-of-CPU", "cpu/wall", "vs 1 worker", "findings=seq"}, rows))
	fmt.Printf("(%d packages, GOMAXPROCS=%d)\n\n", len(r.combined.Packages), runtime.GOMAXPROCS(0))
}

// provenanceTable measures the export-graph reach gate on the
// ground-truth corpus: pruning and skip rates, fallback rate, export
// counts and finding-provenance depth, with the gate on and off —
// plus the soundness cross-check that both modes report identical
// findings (the differential oracle, rendered as a column).
func (r *runner) provenanceTable() {
	fmt.Println("== Reach-gate precision: export-graph gate over the ground-truth corpus ==")
	gated := metrics.SweepGraphJS(r.combined, scanner.Options{Workers: r.workers})
	ungated := metrics.SweepGraphJS(r.combined, scanner.Options{Workers: r.workers, NoReachGate: true})
	row := func(label string, sw *metrics.Sweep) []string {
		ea := metrics.EngineAverages(sw.Results)
		n := 0
		for _, pr := range sw.Results {
			n += len(pr.Findings)
		}
		return []string{
			label,
			metrics.FmtDur(sw.Wall),
			fmt.Sprintf("%d/%d", ea.FuncsPruned, ea.FuncsTotal),
			metrics.FmtPct(ea.PrunedRate()),
			fmt.Sprintf("%d/%d", ea.SkippedByReach, len(sw.Results)),
			fmt.Sprint(ea.ReachFallbacks),
			fmt.Sprint(ea.Exports),
			fmt.Sprint(ea.MaxProvDepth),
			fmt.Sprint(n),
		}
	}
	rows := [][]string{row("export-graph", gated), row("ungated", ungated)}
	fmt.Print(metrics.Table([]string{
		"gate", "wall", "pruned", "pruned-rate", "skipped", "fallback", "exports", "prov-depth", "findings",
	}, rows))
	fmt.Printf("findings identical gated vs ungated: %v\n\n", sameFindings(gated.Results, ungated.Results))
}

// faultsTable sweeps the pathological crash corpus with both tools
// under a tight per-package budget and reports how each run ended —
// the fault-containment counterpart of the effectiveness tables.
func (r *runner) faultsTable() {
	c := dataset.Pathological()
	fmt.Printf("== Failure classes: %d crash-corpus packages, 2s/package budget ==\n", len(c.Packages))
	gs := metrics.SweepGraphJS(c, scanner.Options{Timeout: 2 * time.Second, Workers: r.workers})
	od := odgen.DefaultOptions()
	od.StepBudget = 20000
	od.Timeout = 2 * time.Second
	od.Workers = r.workers
	osw := metrics.SweepODGen(c, od)

	gc := metrics.FailureCounts(gs.Results)
	oc := metrics.FailureCounts(osw.Results)
	var rows [][]string
	for _, cl := range append([]budget.Class{budget.ClassNone}, budget.Classes...) {
		rows = append(rows, []string{cl.String(), fmt.Sprint(gc[cl]), fmt.Sprint(oc[cl])})
	}
	fmt.Print(metrics.Table([]string{"class", "Graph.js", "ODGen*"}, rows))
	var rows2 [][]string
	for i, p := range c.Packages {
		g, o := gs.Results[i], osw.Results[i]
		rows2 = append(rows2, []string{
			p.Name, g.Failure.String(), fmt.Sprint(len(g.Findings)),
			o.Failure.String(), fmt.Sprint(len(o.Findings)),
		})
	}
	fmt.Print(metrics.Table([]string{"package", "G.class", "G.findings", "O.class", "O.findings"}, rows2))
	fmt.Println("(every package terminates within its budget; budget-exceeded rows keep")
	fmt.Println(" the findings established before the budget tripped)")
	fmt.Println()
}

// sameFindings reports whether two sweeps produced identical
// finding-sets package by package.
func sameFindings(a, b []metrics.PackageResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Package != b[i].Package {
			return false
		}
		if scanner.DiffFindings(a[i].Findings, b[i].Findings) != nil {
			return false
		}
	}
	return true
}

func cweName(c queries.CWE) string {
	switch c {
	case queries.CWEPathTraversal:
		return "Path Traversal"
	case queries.CWECommandInjection:
		return "Command Injection"
	case queries.CWECodeInjection:
		return "Code Injection"
	case queries.CWEPrototypePollution:
		return "Prototype Pollution"
	}
	return string(c)
}

// table3 prints the dataset composition (Table 3).
func (r *runner) table3() {
	fmt.Println("== Table 3: reference datasets per vulnerability type ==")
	count := func(c *dataset.Corpus) map[queries.CWE]int {
		m := map[queries.CWE]int{}
		for _, p := range c.Packages {
			for _, a := range p.Annotated {
				m[a.CWE]++
			}
		}
		return m
	}
	vm, sm := count(r.vulcan), count(r.secbench)
	total := 0
	var rows [][]string
	for _, cwe := range queries.AllCWEs {
		t := vm[cwe] + sm[cwe]
		total += t
		rows = append(rows, []string{
			cweName(cwe), string(cwe),
			fmt.Sprint(vm[cwe]), fmt.Sprint(sm[cwe]), fmt.Sprint(t),
			fmt.Sprintf("%.1f%%", 100*float64(t)/603.0),
		})
	}
	rows = append(rows, []string{"Total", "", fmt.Sprint(r.vulcan.NumVulns()),
		fmt.Sprint(r.secbench.NumVulns()), fmt.Sprint(total), ""})
	fmt.Print(metrics.Table(
		[]string{"Vulnerability Type", "CWE", "VulcaN*", "SecBench*", "Total", "Distribution"}, rows))
	fmt.Println("(paper totals: 5+161=166, 87+82=169, 33+21=54, 94+120=214, total 603)")
	fmt.Println()
}

// table4 prints effectiveness and precision (Table 4).
func (r *runner) table4() {
	r.run()
	fmt.Println("== Table 4: effectiveness and precision (measured | paper) ==")
	paper := map[queries.CWE][2][3]float64{ // [tool][precision recall f1]
		queries.CWEPathTraversal:      {{0.84, 0.97, 0.90}, {1.00, 0.62, 0.77}},
		queries.CWECommandInjection:   {{0.95, 0.95, 0.95}, {0.71, 0.73, 0.72}},
		queries.CWECodeInjection:      {{0.78, 0.87, 0.82}, {0.66, 0.44, 0.53}},
		queries.CWEPrototypePollution: {{0.60, 0.59, 0.59}, {0.76, 0.20, 0.31}},
	}
	var rows [][]string
	for _, cwe := range queries.AllCWEs {
		g := r.gOut.PerCWE[cwe]
		o := r.oOut.PerCWE[cwe]
		pp := paper[cwe]
		rows = append(rows, []string{
			string(cwe), fmt.Sprint(g.Total),
			fmt.Sprint(g.TP), fmt.Sprint(g.FP), fmt.Sprint(g.TFP),
			metrics.FmtPct(g.Recall()), metrics.FmtPct(g.Precision()), metrics.FmtPct(g.F1()),
			fmt.Sprintf("(%.2f/%.2f)", pp[0][1], pp[0][0]),
			fmt.Sprint(o.TP), fmt.Sprint(o.FP), fmt.Sprint(o.TFP),
			metrics.FmtPct(o.Recall()), metrics.FmtPct(o.Precision()),
			fmt.Sprintf("(%.2f/%.2f)", pp[1][1], pp[1][0]),
		})
	}
	g, o := r.gOut.TotalCounts(), r.oOut.TotalCounts()
	rows = append(rows, []string{
		"Total", fmt.Sprint(g.Total),
		fmt.Sprint(g.TP), fmt.Sprint(g.FP), fmt.Sprint(g.TFP),
		metrics.FmtPct(g.Recall()), metrics.FmtPct(g.Precision()), metrics.FmtPct(g.F1()),
		"(0.82/0.78)",
		fmt.Sprint(o.TP), fmt.Sprint(o.FP), fmt.Sprint(o.TFP),
		metrics.FmtPct(o.Recall()), metrics.FmtPct(o.Precision()),
		"(0.50/0.64)",
	})
	fmt.Print(metrics.Table([]string{
		"CWE", "Total",
		"G.TP", "G.FP", "G.TFP", "G.Rec", "G.Prec", "G.F1", "G.paper(R/P)",
		"O.TP", "O.FP", "O.TFP", "O.Rec", "O.Prec", "O.paper(R/P)",
	}, rows))
	fmt.Println("(Graph.js per-CWE paper values are from Table 4; the ODGen per-CWE")
	fmt.Println(" values are reconstructed from the paper's prose where the table was")
	fmt.Println(" not fully machine-readable — totals 304 TP / 0.50 recall are exact.)")
	fmt.Println()
}

// figure6 prints the detection overlap (Figure 6).
func (r *runner) figure6() {
	r.run()
	onlyG, both, onlyO := metrics.Venn(r.gOut, r.oOut)
	fmt.Println("== Figure 6: Venn diagram of detected vulnerabilities ==")
	fmt.Printf("Graph.js only: %d   (paper: 207)\n", onlyG)
	fmt.Printf("both:          %d   (paper: 287)\n", both)
	fmt.Printf("baseline only: %d   (paper: 17)\n", onlyO)
	fmt.Println()
}

// table5 scans the Collected-style wild corpus (Table 5).
func (r *runner) table5() {
	fmt.Println("== Table 5: findings in the Collected-style corpus ==")
	c := dataset.Collected(r.seed+1, dataset.DefaultCollectedMix(r.collectedN))
	cfg := queries.DefaultConfig()
	cfg.RequireAsCodeInjection = true // the wild-scan configuration (§5.3)
	reported := map[queries.CWE]int{}
	exploitable := map[queries.CWE]int{}
	fp := map[queries.CWE]int{}
	confirmed := map[string]map[queries.CWE]bool{}
	// Scans run on the worker pool; the confirmation pass below stays
	// sequential because it shares the memoization maps.
	results := metrics.RunGraphJS(c, scanner.Options{Config: cfg, Workers: r.workers})
	for i, p := range c.Packages {
		rep := results[i]
		for _, f := range rep.Findings {
			reported[f.CWE]++
			// Dynamic confirmation (the paper's expert check, §5.3):
			// drive the package in the instrumented interpreter and
			// observe whether the class oracle fires.
			if confirmed[p.Name] == nil {
				confirmed[p.Name] = map[queries.CWE]bool{}
			}
			ok, cached := confirmed[p.Name][f.CWE]
			if !cached {
				v, err := poc.Confirm(map[string]string{"index.js": p.Source}, "index.js", f.CWE)
				ok = err == nil && v.Exploitable
				confirmed[p.Name][f.CWE] = ok
			}
			if ok {
				exploitable[f.CWE]++
			} else {
				fp[f.CWE]++
			}
		}
	}
	var rows [][]string
	paper := map[queries.CWE][3]int{ // reported, exploitable, FP (of checked)
		queries.CWEPathTraversal:      {1223, 4, 21},
		queries.CWECommandInjection:   {384, 71, 91},
		queries.CWECodeInjection:      {701, 10, 191},
		queries.CWEPrototypePollution: {361, 16, 15},
	}
	for _, cwe := range queries.AllCWEs {
		pp := paper[cwe]
		rows = append(rows, []string{
			cweName(cwe), fmt.Sprint(reported[cwe]), fmt.Sprint(exploitable[cwe]),
			fmt.Sprint(fp[cwe]),
			fmt.Sprintf("(paper: %d/%d/%d)", pp[0], pp[1], pp[2]),
		})
	}
	fmt.Print(metrics.Table([]string{"Vulnerability", "Reported", "Exploitable*", "FP", "paper(Rep/Expl/FP)"}, rows))
	fmt.Println("(*Exploitable = dynamically confirmed by the instrumented interpreter)")
	fmt.Printf("(corpus: %d packages; paper used 32K real packages)\n\n", len(c.Packages))
}

// figure7 prints the analysis-time CDF (Figure 7).
func (r *runner) figure7() {
	r.run()
	fmt.Println("== Figure 7: CDF of total analysis time ==")
	// Thresholds as fractions of the timeout cap.
	maxT := maxTime(r.gjs)
	if m := maxTime(r.odg); m > maxT {
		maxT = m
	}
	cap := maxT * 10
	var ths []time.Duration
	for _, f := range []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2, 10} {
		ths = append(ths, time.Duration(float64(maxT)*f))
	}
	gc := metrics.CDF(r.gjs, ths, cap)
	oc := metrics.CDF(r.odg, ths, cap)
	var rows [][]string
	for i, th := range ths {
		rows = append(rows, []string{
			metrics.FmtDur(th),
			fmt.Sprintf("%.1f%%", gc[i]*100),
			fmt.Sprintf("%.1f%%", oc[i]*100),
		})
	}
	fmt.Print(metrics.Table([]string{"t <=", "Graph.js", "baseline"}, rows))
	fmt.Printf("completed: Graph.js %.1f%% (paper: 98.2%%), baseline %.1f%% (paper: 71.5%%)\n\n",
		100*float64(len(r.gjs)-r.gOut.TimedOut)/float64(len(r.gjs)),
		100*float64(len(r.odg)-r.oOut.TimedOut)/float64(len(r.odg)))
}

func maxTime(rs []metrics.PackageResult) time.Duration {
	var m time.Duration
	for _, r := range rs {
		if !r.TimedOut && r.GraphTime+r.QueryTime > m {
			m = r.GraphTime + r.QueryTime
		}
	}
	return m
}

// table6 prints per-phase average times (Table 6).
func (r *runner) table6() {
	r.run()
	fmt.Println("== Table 6: average time per analysis phase (non-timed-out) ==")
	g := metrics.PhaseAverages(r.gjs)
	o := metrics.PhaseAverages(r.odg)
	var rows [][]string
	for _, cwe := range queries.AllCWEs {
		gp, op := g[cwe], o[cwe]
		rows = append(rows, []string{
			string(cwe),
			metrics.FmtDur(gp[0]), metrics.FmtDur(gp[1]), metrics.FmtDur(gp[0] + gp[1]),
			metrics.FmtDur(op[0]), metrics.FmtDur(op[1]), metrics.FmtDur(op[0] + op[1]),
		})
	}
	fmt.Print(metrics.Table([]string{
		"CWE", "G.graph", "G.traversals", "G.total",
		"O.graph", "O.traversals", "O.total",
	}, rows))
	fmt.Println("(paper, seconds: Graph.js 2.10/2.44/4.61 total avg; ODGen 2.68/2.73/5.41;")
	fmt.Println(" ODGen's traversals faster for taint-style CWEs, far slower for CWE-1321)")
	fmt.Println()
}

// table7 prints graph sizes by LoC bucket (Table 7).
func (r *runner) table7() {
	r.run()
	fmt.Println("== Table 7: graph size by package LoC ==")
	bounds := []int{12, 16, 20, 24}
	gb := metrics.SizeBuckets(r.gjs, bounds)
	ob := metrics.SizeBuckets(r.odg, bounds)
	var rows [][]string
	for i := range gb {
		rows = append(rows, []string{
			gb[i].Label, fmt.Sprint(gb[i].Packages),
			fmt.Sprint(gb[i].Graphs), fmt.Sprintf("%.0f", gb[i].AvgNodes), fmt.Sprintf("%.0f", gb[i].AvgEdges),
			fmt.Sprint(ob[i].Graphs), fmt.Sprintf("%.0f", ob[i].AvgNodes), fmt.Sprintf("%.0f", ob[i].AvgEdges),
		})
	}
	fmt.Print(metrics.Table([]string{
		"LoC", "#", "G.graphs", "G.nodes", "G.edges", "O.graphs", "O.nodes", "O.edges",
	}, rows))
	var gN, oN, gE, oE float64
	n := 0
	for i := range r.gjs {
		if !r.odg[i].TimedOut {
			gN += float64(r.gjs[i].TotalNodes)
			gE += float64(r.gjs[i].TotalEdges)
			oN += float64(r.odg[i].TotalNodes)
			oE += float64(r.odg[i].TotalEdges)
			n++
		}
	}
	if oN > 0 && oE > 0 {
		fmt.Printf("avg over both-completed packages: nodes %.2fx, edges %.2fx (paper: 0.14x nodes, 0.42x edges)\n\n",
			gN/oN, gE/oE)
	}
}
