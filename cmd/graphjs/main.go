// Command graphjs is the Graph.js scanner CLI: it analyzes JavaScript
// files or npm-package directories and reports potential taint-style
// and prototype-pollution vulnerabilities.
//
// Usage:
//
//	graphjs [flags] <file.js | package-dir> ...
//
// Flags:
//
//	-config FILE    sink configuration (JSON); default: built-in sinks
//	-engine NAME    detection engine: query, native, differential, or fallback
//	-workers N      scan targets on N parallel workers (0 = GOMAXPROCS)
//	-timeout DUR    per-target analysis timeout (default 5m, as in §5.1)
//	-max-steps N    per-target abstract-step cap (0 = unlimited)
//	-max-nodes N    per-target MDG node cap (0 = unlimited)
//	-max-edges N    per-target MDG edge cap (0 = unlimited)
//	-require-sink   treat dynamic require() as a code-injection sink
//	-tree           scan package directories as dependency trees: resolve
//	                node_modules, analyze each package as its own MDG
//	                fragment, stitch, and link cross-package flows
//	-incremental    reuse MDG fragments across scans of repeated targets
//	-cache-dir DIR  persistent analysis store: cached fragments and results
//	                survive across invocations (implies -incremental)
//	-no-fsync       skip store/journal fsyncs (benchmarks only)
//	-sweep          supervised sweep: retry/degradation ladder per target
//	-journal FILE   with -sweep: append per-target outcomes to a JSONL journal
//	-resume         with -sweep -journal: skip targets whose entry matches
//	-requarantine   with -resume: re-scan quarantined targets
//	-compact-journal  with -sweep -journal -cache-dir: fold the journal's
//	                live entries into the store and truncate the log
//	-dump-mdg       print the MDG in Graphviz DOT format and exit
//	-dump-core      print the normalized Core JavaScript and exit
//	-export-db      write the loaded property graph as JSON and exit
//	-trace          include source→sink witness paths in the report
//	-poc            emit proof-of-vulnerability skeletons (§5.3 workflow)
//	-confirm        dynamically confirm findings (instrumented interpreter)
//	-stats          print graph-size and timing statistics
//	-json           machine-readable findings output
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/js/normalize"
	"repro/internal/metrics"
	"repro/internal/poc"
	"repro/internal/queries"
	"repro/internal/scanner"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/sweepjournal"
)

func main() {
	configPath := flag.String("config", "", "sink configuration file (JSON)")
	engineName := flag.String("engine", "query", "detection engine: query, native, differential, or fallback")
	workers := flag.Int("workers", 1, "parallel workers for multi-target scans (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-target analysis timeout")
	maxSteps := flag.Int("max-steps", 0, "per-target abstract-step cap (0 = unlimited)")
	maxNodes := flag.Int("max-nodes", 0, "per-target MDG node cap (0 = unlimited)")
	maxEdges := flag.Int("max-edges", 0, "per-target MDG edge cap (0 = unlimited)")
	requireSink := flag.Bool("require-sink", false, "treat dynamic require() as a code-injection sink")
	treeMode := flag.Bool("tree", false, "scan package directories as dependency trees: resolve node_modules, stitch per-package MDG fragments, and link cross-package flows")
	incremental := flag.Bool("incremental", false, "reuse MDG fragments and detection results across scans of repeated targets; -stats prints hit/miss/rebuild counters")
	cacheDir := flag.String("cache-dir", "", "persistent analysis store directory; cached work survives across invocations (implies -incremental)")
	noFsync := flag.Bool("no-fsync", false, "skip store/journal fsyncs (benchmarks only; a crash may lose cached work)")
	compactJournal := flag.Bool("compact-journal", false, "with -sweep -journal -cache-dir: fold the journal's live entries into the store and truncate the log")
	sweepMode := flag.Bool("sweep", false, "supervised sweep: retry failures down a degradation ladder until every target reaches a terminal state")
	journalPath := flag.String("journal", "", "with -sweep: append per-target outcomes to this JSONL journal as workers finish")
	resume := flag.Bool("resume", false, "with -sweep -journal: skip targets whose journal entry matches the current content and options")
	requarantine := flag.Bool("requarantine", false, "with -resume: re-scan quarantined targets instead of skipping them")
	dumpMDG := flag.Bool("dump-mdg", false, "print the MDG in DOT format")
	dumpCore := flag.Bool("dump-core", false, "print the normalized Core JavaScript")
	exportDB := flag.Bool("export-db", false, "write the loaded property graph as JSON")
	trace := flag.Bool("trace", false, "print source→sink witness paths")
	genPoC := flag.Bool("poc", false, "emit proof-of-vulnerability skeletons for findings")
	confirm := flag.Bool("confirm", false, "dynamically confirm findings in the instrumented interpreter")
	stats := flag.Bool("stats", false, "print size and timing statistics")
	asJSON := flag.Bool("json", false, "JSON output")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: graphjs [flags] <file.js | package-dir> ...")
		flag.Usage()
		os.Exit(2)
	}

	cfg := queries.DefaultConfig()
	if *configPath != "" {
		var err error
		cfg, err = queries.LoadConfig(*configPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	cfg.RequireAsCodeInjection = *requireSink

	engine, err := scanner.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Scans run on a bounded worker pool (ScanSource is safe for
	// concurrent use); reports are collected into an index-addressed
	// slice and printed in argument order, so -workers never reorders
	// or interleaves output. Dump modes and the confirmation/PoC
	// passes below stay on the main goroutine.
	targets := flag.Args()
	reports := make([]*scanner.Report, len(targets))
	opts := scanner.Options{
		Config: cfg, Timeout: *timeout, Engine: engine,
		MaxSteps: *maxSteps, MaxNodes: *maxNodes, MaxEdges: *maxEdges,
		Tree: *treeMode,
	}
	var pool *scanner.StatePool
	if *incremental || *cacheDir != "" {
		// One incremental state per distinct target: a target repeated
		// on the command line (or re-scanned by an embedding caller) is
		// re-analyzed only where its files changed.
		pool = scanner.NewStatePool()
	}
	var st *store.Store
	if *cacheDir != "" {
		st, err = store.Open(*cacheDir, store.Options{NoFsync: *noFsync})
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphjs: open cache %s: %v\n", *cacheDir, err)
			os.Exit(1)
		}
		// Close syncs; deferred exits below go through finish.
		pool.AttachStore(st)
	}
	finish := func(code int) {
		if st != nil {
			if cerr := st.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "graphjs: close cache: %v\n", cerr)
				if code == 0 {
					code = 1
				}
			}
		}
		os.Exit(code)
	}
	if *compactJournal && (!*sweepMode || *journalPath == "" || st == nil) {
		fmt.Fprintln(os.Stderr, "graphjs: -compact-journal requires -sweep, -journal, and -cache-dir")
		finish(2)
	}
	if *sweepMode {
		if *dumpMDG || *dumpCore || *exportDB {
			fmt.Fprintln(os.Stderr, "graphjs: -sweep cannot be combined with dump modes")
			finish(2)
		}
		opts.Workers = *workers
		finish(runSweep(targets, opts, pool, metrics.SuperviseOptions{
			JournalPath:    *journalPath,
			Resume:         *resume,
			Requarantine:   *requarantine,
			Store:          st,
			CompactJournal: *compactJournal,
			NoFsync:        *noFsync,
		}, *asJSON))
	}
	if !(*dumpMDG || *dumpCore || *exportDB) {
		scanAll(targets, reports, opts, *workers, pool)
	}

	exit := 0
	for i, target := range targets {
		if *dumpMDG || *dumpCore || *exportDB {
			if err := dump(target, *dumpMDG, *dumpCore, *exportDB); err != nil {
				fmt.Fprintln(os.Stderr, err)
				exit = 1
			}
			continue
		}
		rep := reports[i]
		if rep.Err != nil {
			fmt.Fprintf(os.Stderr, "graphjs: %v\n", rep.Err)
			exit = 1
			continue
		}
		if *asJSON {
			printJSON(rep)
		} else {
			printHuman(rep, *stats, *trace)
		}
		if *genPoC {
			for _, e := range poc.GenerateAll(rep.Findings, target) {
				fmt.Printf("\n// ---- PoC for %s ----\n%s", e.Finding, e.Script)
			}
		}
		if *confirm {
			confirmFindings(target, rep)
		}
		if len(rep.Findings) > 0 {
			exit = 3 // findings present
		}
	}
	finish(exit)
}

// scanAll fills reports[i] with the scan of targets[i], using a
// bounded pool of workers goroutines (0 = GOMAXPROCS). When pool is
// non-nil, each distinct target gets a persistent incremental state.
func scanAll(targets []string, reports []*scanner.Report, opts scanner.Options, workers int, pool *scanner.StatePool) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(targets) {
		workers = len(targets)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				o := opts
				if pool != nil {
					o.Incremental = pool.Get(targets[i])
				}
				reports[i] = scanTarget(targets[i], o)
			}
		}()
	}
	for i := range targets {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// confirmFindings drives the target in the instrumented interpreter
// for each finding class and reports the dynamic verdicts (§5.3).
func confirmFindings(target string, rep *scanner.Report) {
	data, err := os.ReadFile(target)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphjs: confirm: %v\n", err)
		return
	}
	sources := map[string]string{target: string(data)}
	seen := map[queries.CWE]bool{}
	for _, f := range rep.Findings {
		if seen[f.CWE] {
			continue
		}
		seen[f.CWE] = true
		v, err := poc.Confirm(sources, target, f.CWE)
		switch {
		case err != nil:
			fmt.Printf("  confirm %s: error: %v\n", f.CWE, err)
		case v.Exploitable:
			fmt.Printf("  confirm %s: EXPLOITABLE — %s\n", f.CWE, v.Evidence)
		default:
			fmt.Printf("  confirm %s: not confirmed (likely true false positive)\n", f.CWE)
		}
	}
}

func scanTarget(target string, opts scanner.Options) *scanner.Report {
	info, err := os.Stat(target)
	if err != nil {
		return &scanner.Report{Name: target, Err: err}
	}
	if info.IsDir() {
		if opts.Tree {
			return scanner.ScanTreeDir(target, opts)
		}
		return scanner.ScanPackage(target, opts)
	}
	return scanner.ScanFile(target, opts)
}

// runSweep is the -sweep mode: a supervised sweep over the CLI targets
// with the retry/degradation ladder, optionally journaled for -resume.
// Returns the process exit code.
func runSweep(targets []string, opts scanner.Options, pool *scanner.StatePool,
	sup metrics.SuperviseOptions, asJSON bool) int {

	// The journal keys entries by target name, so a target repeated on
	// the command line is swept once.
	seen := map[string]bool{}
	units := make([]metrics.Target, 0, len(targets))
	for _, target := range targets {
		if seen[target] {
			fmt.Fprintf(os.Stderr, "graphjs: duplicate target %s swept once\n", target)
			continue
		}
		seen[target] = true
		target := target
		hash := func() string { return hashTarget(target) }
		if opts.Tree {
			// Tree scans depend on node_modules content and package.json
			// manifests, so the resume hash must cover them too.
			hash = func() string { return metrics.HashTreeTarget(target) }
		}
		units = append(units, metrics.Target{
			Name: target,
			Hash: hash,
			Scan: func(o scanner.Options) *scanner.Report {
				if pool != nil {
					o.Incremental = pool.Get(target)
				}
				return scanTarget(target, o)
			},
		})
	}

	sw, stats, err := metrics.SuperviseGraphJSTargets(units, opts, sup)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphjs: sweep: %v\n", err)
		return 1
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(stats.Entries)
	} else {
		for i := range stats.Entries {
			printEntry(&stats.Entries[i])
		}
		fmt.Printf("sweep: %d targets — %d complete, %d degraded, %d quarantined, %d resumed\n",
			len(units), stats.Completed, stats.Degraded, stats.Quarantined, stats.Resumed)
		ea := metrics.EngineAverages(sw.Results)
		if ea.FuncsTotal > 0 || ea.SkippedByReach > 0 {
			fmt.Printf("reach gate: %d/%d functions pruned (%.0f%%), %d targets skipped, %d fallback, %d exports, max provenance depth %d\n",
				ea.FuncsPruned, ea.FuncsTotal, 100*ea.PrunedRate(),
				ea.SkippedByReach, ea.ReachFallbacks, ea.Exports, ea.MaxProvDepth)
		}
		if stats.Torn {
			fmt.Println("(the resumed journal ended in a torn line — kill artifact, repaired)")
		}
	}
	for i := range sw.Results {
		if len(sw.Results[i].Findings) > 0 {
			return 3 // findings present
		}
	}
	return 0
}

// printEntry renders one terminal journal entry for human output.
func printEntry(e *sweepjournal.Entry) {
	fmt.Printf("%s: %s @%s", e.Package, e.State, e.Rung)
	if e.Class != "" {
		fmt.Printf(" [%s]", e.Class)
	}
	if e.Incomplete {
		fmt.Print(" (incomplete)")
	}
	fmt.Printf(" — %d findings, %d attempts\n", len(e.Findings), len(e.Attempts))
	for _, f := range e.Findings {
		fmt.Printf("  [%s] sink %s (%s:%d) from %s\n", f.CWE, f.SinkName, f.SinkFile, f.SinkLine, f.Source)
	}
}

// hashTarget fingerprints a target's on-disk content for the resume
// check; the directory walk mirrors ScanPackage's file selection. An
// unreadable target hashes its error text — still deterministic, so a
// resume skips it until the problem (or the file) changes.
func hashTarget(target string) string {
	return metrics.HashTarget(target)
}

func printHuman(rep *scanner.Report, stats, trace bool) {
	fmt.Printf("%s:\n", rep.Name)
	if rep.TimedOut {
		fmt.Println("  analysis timed out")
	}
	if rep.Failure != "" {
		fmt.Printf("  failure class: %s\n", rep.Failure)
	}
	if rep.Incomplete {
		fmt.Println("  incomplete: findings below are the subset established before the budget tripped")
	}
	if rep.FellBack {
		fmt.Printf("  fell back to the query engine (native failed: %v)\n", rep.FallbackErr)
	}
	if len(rep.Findings) == 0 {
		fmt.Println("  no vulnerabilities found")
	}
	for _, f := range rep.Findings {
		fmt.Printf("  %s\n", f)
		if f.Provenance.Entry != "" {
			fmt.Printf("    via %s\n", f.Provenance)
		}
		if len(f.Provenance.DepPath) > 0 {
			fmt.Printf("    dependencies: %s\n", strings.Join(f.Provenance.DepPath, " -> "))
		}
		if trace && len(f.Path) > 0 {
			fmt.Printf("    witness path: %d nodes (ids %v)\n", len(f.Path), f.Path)
		}
	}
	if stats {
		fmt.Printf("  stats: %d LoC, %d AST nodes, %d CFG nodes, %d MDG nodes, %d MDG edges\n",
			rep.LoC, rep.ASTNodes, rep.CFGNodes, rep.MDGNodes, rep.MDGEdges)
		if rep.TreePackages > 0 {
			fmt.Printf("  tree: %d packages, node_modules depth %d\n", rep.TreePackages, rep.TreeDepth)
		}
		fmt.Printf("  time: graph %s, traversals %s (engine %s)\n", rep.GraphTime, rep.QueryTime, rep.Engine)
		for _, ph := range rep.Phases {
			fmt.Printf("  phase %s: %d steps, %d nodes, %d edges, %s\n",
				ph.Phase, ph.Steps, ph.Nodes, ph.Edges, ph.Dur.Round(time.Microsecond))
		}
		if rep.ExhaustedPhase != "" {
			fmt.Printf("  budget exhausted in phase: %s\n", rep.ExhaustedPhase)
		}
		if rep.Engine == scanner.EngineDifferential {
			fmt.Printf("  engines: query %s, native %s\n", rep.QueryEngineTime, rep.NativeTime)
		}
		if rep.FuncsTotal > 0 || rep.SkippedByReach {
			fmt.Printf("  reach: %d/%d functions pruned, skipped=%v, exports=%d, fallback=%v\n",
				rep.FuncsPruned, rep.FuncsTotal, rep.SkippedByReach, rep.ExportCount, rep.ReachFallback)
		}
		if rep.ProvenanceDepth > 0 {
			fmt.Printf("  provenance: deepest call-hop chain %d\n", rep.ProvenanceDepth)
		}
		if rep.TruncatedSearches > 0 {
			fmt.Printf("  truncated searches: %d (hop bound hit)\n", rep.TruncatedSearches)
		}
		if s := rep.IncrStats; s != nil {
			fmt.Printf("  incremental: front-end %d hit/%d miss, fragments %d hit/%d rebuilt, detection %d hit/%d miss, evicted %d files/%d fragments\n",
				s.FrontEndHits, s.FrontEndMisses, s.FragmentHits, s.Rebuilds(),
				s.DetectHits, s.DetectMisses, s.EvictedFiles, s.EvictedFragments)
		}
	}
}

// printJSON emits the shared wire rendering (server.ReportToJSON), so
// the CLI's -json output is byte-identical to the daemon's findings
// for the same scan.
func printJSON(rep *scanner.Report) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(server.ReportToJSON(rep))
}

func dump(target string, mdgOut, coreOut, exportDB bool) error {
	data, err := os.ReadFile(target)
	if err != nil {
		return err
	}
	prog, err := normalize.File(string(data), target)
	if err != nil {
		return err
	}
	if coreOut {
		fmt.Print(core.Print(prog.Body))
	}
	if mdgOut {
		res := analysis.Analyze(prog, analysis.DefaultOptions())
		fmt.Print(res.Graph.DOT())
	}
	if exportDB {
		res := analysis.Analyze(prog, analysis.DefaultOptions())
		lg := queries.Load(res)
		if err := lg.DB.ExportJSON(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
